package rt

import (
	"sync"

	"github.com/omp4go/omp4go/internal/directive"
	"github.com/omp4go/omp4go/internal/metrics"
	"github.com/omp4go/omp4go/internal/ompt"
	"github.com/omp4go/omp4go/internal/prof"
)

// regionState is the team-shared state of one worksharing construct
// instance: the iteration/section counter driven by dynamic
// scheduling, the single-claim flag, the ordered cursor, and the
// copyprivate broadcast slot.
type regionState struct {
	iter     Counter // next unclaimed linear iteration / section id
	claim    Counter // single: 0 unclaimed, 1 claimed
	finished Counter // threads that completed the construct (for GC)
	ordNext  Counter // ordered: next linear iteration allowed to enter

	cpMu    sync.Mutex
	cpVal   any
	cpEvent Event
}

// regionTable matches the Nth worksharing construct encountered by
// each team thread to shared state. Threads arrive asynchronously
// (nowait lets them run ahead), so the table is keyed by per-thread
// construct sequence numbers. Creation is coordinated with a mutex in
// the mutex layer and with LoadOrStore (an atomic swap) in the atomic
// layer, mirroring the counter-creation strategies of §III-D.
type regionTable struct {
	layer Layer

	mu sync.Mutex
	m  map[int64]*regionState

	am sync.Map // atomic layer: map[int64]*regionState
}

func newRegionTable(l Layer) *regionTable {
	return &regionTable{layer: l, m: make(map[int64]*regionState)}
}

func (rt *regionTable) get(idx int64, l Layer) *regionState {
	if rt.layer == LayerAtomic {
		if v, ok := rt.am.Load(idx); ok {
			return v.(*regionState)
		}
		v, _ := rt.am.LoadOrStore(idx, newRegionState(l))
		return v.(*regionState)
	}
	rt.mu.Lock()
	s, ok := rt.m[idx]
	if !ok {
		s = newRegionState(l)
		rt.m[idx] = s
	}
	rt.mu.Unlock()
	return s
}

func (rt *regionTable) drop(idx int64) {
	if rt.layer == LayerAtomic {
		rt.am.Delete(idx)
		return
	}
	rt.mu.Lock()
	delete(rt.m, idx)
	rt.mu.Unlock()
}

func newRegionState(l Layer) *regionState {
	return &regionState{
		iter:     NewCounter(l),
		claim:    NewCounter(l),
		finished: NewCounter(l),
		ordNext:  NewCounter(l),
		cpEvent:  NewEvent(l),
	}
}

// enterRegion assigns the next worksharing region to this thread and
// returns its shared state.
func (c *Context) enterRegion() (*regionState, int64) {
	c.wsIndex++
	return c.team.regions.get(c.wsIndex, c.team.layer), c.wsIndex
}

// leaveRegion retires the thread from the region, dropping the shared
// state once the whole team has passed.
func (c *Context) leaveRegion(s *regionState, idx int64) {
	if s.finished.Add(1) == int64(c.team.size) {
		c.team.regions.drop(idx)
	}
}

// Triplet is one loop level's (start, end, step) iteration triplet,
// as produced from the range() call of the source loop.
type Triplet struct {
	Start, End, Step int64
}

// count returns the number of iterations of the triplet.
func (t Triplet) count() int64 {
	if t.Step == 0 {
		return 0
	}
	var n int64
	if t.Step > 0 {
		if t.End <= t.Start {
			return 0
		}
		n = (t.End - t.Start + t.Step - 1) / t.Step
	} else {
		if t.End >= t.Start {
			return 0
		}
		n = (t.Start - t.End + (-t.Step) - 1) / (-t.Step)
	}
	return n
}

// value maps a local index in [0, count) to the loop variable value.
func (t Triplet) value(i int64) int64 { return t.Start + i*t.Step }

// LoopBounds is the per-thread loop descriptor created by ForBounds
// and updated in place by ForNext — the __omp_bounds array of the
// generated code (Fig. 3). Each thread owns an independent copy; only
// the region's shared counter is coordinated between threads.
type LoopBounds struct {
	Triplets []Triplet
	Total    int64 // product of per-level counts (collapsed space)

	// Current chunk, in linear iteration space: [Lo, Hi).
	Lo, Hi int64

	counts []int64 // per-level iteration counts (collapse unraveling)

	sched   Schedule
	tnum    int
	tsize   int
	nowait  bool
	ordered bool

	// static scheduling cursor
	next   int64
	stride int64
	limit  int64 // static no-chunk: end of this thread's block

	region *regionState
	regIdx int64
	team   *Team
	ctx    *Context
	last   bool
	inited bool

	// Observability: the chunk claimed by the previous ForNext is
	// still executing when the next ForNext runs, so its completion
	// event (with execution time) is emitted one call late.
	chunkOpen        bool
	chunkLo, chunkHi int64
	chunkT0          int64
}

// ForBounds builds a loop descriptor from one triplet per collapsed
// loop level (the for_bounds call of the generated code).
func ForBounds(triplets ...Triplet) *LoopBounds {
	b := &LoopBounds{Triplets: triplets}
	b.Total = 1
	b.counts = make([]int64, len(triplets))
	for i, t := range triplets {
		b.counts[i] = t.count()
		b.Total *= b.counts[i]
	}
	if len(triplets) == 0 {
		b.Total = 0
	}
	return b
}

// ForOpts carries the loop clauses the runtime consumes.
type ForOpts struct {
	Sched    Schedule
	SchedSet bool
	Ordered  bool
	NoWait   bool
}

// ForInit prepares the parallel execution of a loop: it creates the
// worksharing region, resolves the scheduling policy, and positions
// this thread's chunk cursor (the for_init call of Fig. 3).
func (c *Context) ForInit(b *LoopBounds, opts ForOpts) error {
	if c.wsDepth > 0 {
		return &MisuseError{Construct: "for",
			Msg: "worksharing construct may not be closely nested inside another worksharing construct"}
	}
	// Resolve and validate the clauses before touching any shared
	// state: an error return must not have entered the worksharing
	// region, or the regionState would leak (its finished counter
	// could never reach team size) and wsIndex would advance without
	// a matching leaveRegion.
	sched := opts.Sched
	if !opts.SchedSet {
		sched = Schedule{Kind: directive.ScheduleStatic}
	}
	switch sched.Kind {
	case directive.ScheduleAuto:
		c.rt.icv.mu.Lock()
		sched = c.rt.icv.defSched
		c.rt.icv.mu.Unlock()
	case directive.ScheduleRuntime:
		c.rt.icv.mu.Lock()
		sched = c.rt.icv.runSched
		c.rt.icv.mu.Unlock()
	}
	if sched.Chunk < 0 {
		return &MisuseError{Construct: "for", Msg: "chunk size must be positive"}
	}

	b.ctx = c
	b.team = c.team
	b.tnum = c.num
	b.tsize = c.team.size
	b.nowait = opts.NoWait
	b.ordered = opts.Ordered
	b.region, b.regIdx = c.enterRegion()
	b.sched = sched

	switch sched.Kind {
	case directive.ScheduleStatic:
		if sched.Chunk == 0 {
			// Block partition: one contiguous chunk per thread.
			base := b.Total / int64(b.tsize)
			rem := b.Total % int64(b.tsize)
			lo := int64(b.tnum)*base + min64(int64(b.tnum), rem)
			sz := base
			if int64(b.tnum) < rem {
				sz++
			}
			b.next = lo
			b.limit = lo + sz
			b.stride = 0
		} else {
			b.next = int64(b.tnum) * sched.Chunk
			b.stride = int64(b.tsize) * sched.Chunk
			b.limit = b.Total
		}
	case directive.ScheduleDynamic, directive.ScheduleGuided:
		if b.sched.Chunk == 0 {
			b.sched.Chunk = 1
		}
	}
	b.inited = true
	c.wsDepth++
	c.curLoop = b
	if c.rt.loadTool() != nil {
		c.emit(ompt.EvLoopBegin, b.Total, b.sched.Chunk, 0, b.sched.Kind.String())
	}
	return nil
}

// ForNext claims the next chunk for this thread, updating Lo and Hi
// in linear space. It returns false when the thread's share of the
// iteration space is exhausted (the for_next call of Fig. 3).
func (b *LoopBounds) ForNext() bool {
	claimed := b.claimNext()
	if b.ctx != nil {
		if claimed {
			m := b.ctx.rt.metrics
			m.Inc(b.ctx.gtid, metrics.LoopChunks)
			m.Add(b.ctx.gtid, metrics.LoopIterations, b.Hi-b.Lo)
		}
		if b.ctx.rt.loadTool() != nil {
			b.traceChunk(claimed)
		}
	}
	return claimed
}

// traceChunk closes the previous chunk's completion event (its body
// just finished executing) and opens the newly claimed one.
func (b *LoopBounds) traceChunk(claimed bool) {
	now := ompt.Now()
	if b.chunkOpen {
		b.chunkOpen = false
		b.ctx.emit(ompt.EvLoopChunk, b.chunkLo, b.chunkHi, now-b.chunkT0, "")
	}
	if claimed {
		b.chunkOpen = true
		b.chunkLo, b.chunkHi = b.Lo, b.Hi
		b.chunkT0 = now
	}
}

// claimNext is the scheduling core of ForNext, free of tracing.
func (b *LoopBounds) claimNext() bool {
	if !b.inited {
		return false
	}
	switch b.sched.Kind {
	case directive.ScheduleStatic:
		if b.sched.Chunk == 0 {
			if b.next >= b.limit {
				return false
			}
			b.Lo, b.Hi = b.next, b.limit
			b.next = b.limit
		} else {
			if b.next >= b.Total {
				return false
			}
			b.Lo = b.next
			b.Hi = min64(b.next+b.sched.Chunk, b.Total)
			b.next += b.stride
		}
	case directive.ScheduleDynamic:
		newv := b.region.iter.Add(b.sched.Chunk)
		old := newv - b.sched.Chunk
		if old >= b.Total {
			return false
		}
		b.Lo = old
		b.Hi = min64(old+b.sched.Chunk, b.Total)
	case directive.ScheduleGuided:
		for {
			cur := b.region.iter.Load()
			remaining := b.Total - cur
			if remaining <= 0 {
				return false
			}
			// Decreasing chunks: the remaining work divided among
			// the team (remaining/tsize, libgomp's guided formula),
			// but never below the minimum chunk.
			sz := remaining / int64(b.tsize)
			if sz < b.sched.Chunk {
				sz = b.sched.Chunk
			}
			if sz > remaining {
				sz = remaining
			}
			if b.region.iter.CompareAndSwap(cur, cur+sz) {
				b.Lo, b.Hi = cur, cur+sz
				break
			}
		}
	default:
		return false
	}
	b.last = b.Hi == b.Total
	return true
}

// IsLast reports whether the chunk most recently returned by ForNext
// contains the sequentially last iteration (lastprivate support).
func (b *LoopBounds) IsLast() bool { return b.last }

// LoValue and HiValue translate the current linear chunk into loop
// variable values for single (non-collapsed) loops, so the generated
// code can run "for i in range(b.LoValue(), b.HiValue(), step)".
func (b *LoopBounds) LoValue() int64 { return b.Triplets[0].value(b.Lo) }

// HiValue returns the exclusive end value of the current chunk.
func (b *LoopBounds) HiValue() int64 { return b.Triplets[0].value(b.Hi) }

// Unravel maps a linear iteration index to the per-level loop
// variable values of a collapsed loop nest.
func (b *LoopBounds) Unravel(linear int64) []int64 {
	out := make([]int64, len(b.Triplets))
	for i := len(b.Triplets) - 1; i >= 0; i-- {
		c := b.counts[i]
		if c == 0 {
			out[i] = b.Triplets[i].Start
			continue
		}
		out[i] = b.Triplets[i].value(linear % c)
		linear /= c
	}
	return out
}

// ForEnd completes the loop construct: it retires the region and
// performs the implicit barrier unless nowait was given.
func (c *Context) ForEnd(b *LoopBounds) error {
	if !b.inited {
		return &MisuseError{Construct: "for", Msg: "ForEnd without ForInit"}
	}
	if c.rt.loadTool() != nil {
		// An early break can leave the final chunk's completion event
		// unemitted; close it before the loop-end event.
		b.traceChunk(false)
		c.emit(ompt.EvLoopEnd, b.Total, 0, 0, b.sched.Kind.String())
	}
	c.wsDepth--
	c.curLoop = nil
	c.leaveRegion(b.region, b.regIdx)
	b.inited = false
	if c.kernelT0 != 0 {
		// Close the compiled-kernel span opened by KernelEnter: its
		// time attributes to the kernel state instead of compute.
		if pb := c.team.profBucket; pb != nil {
			if ns := ompt.Now() - c.kernelT0; ns > 0 {
				pb.Add(int32(c.num), prof.Kernel, ns)
				c.profWaitNS += ns
			}
		}
		c.kernelT0 = 0
	}
	if b.nowait {
		return nil
	}
	return c.team.Barrier(c)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// OrderedBegin blocks until every prior iteration of the enclosing
// ordered loop has completed its ordered region. iterValue is the
// current value of the loop variable.
func (c *Context) OrderedBegin(iterValue int64) error {
	b := c.curLoop
	if b == nil || !b.ordered {
		return &MisuseError{Construct: "ordered",
			Msg: "ordered region outside a loop with the ordered clause"}
	}
	tr := b.Triplets[0]
	if tr.Step == 0 {
		return &MisuseError{Construct: "ordered", Msg: "zero loop step"}
	}
	linear := (iterValue - tr.Start) / tr.Step
	if b.region.ordNext.Load() != linear {
		c.team.waitFor(func() bool {
			return b.region.ordNext.Load() == linear || c.team.broken.Load() != 0
		})
		if c.team.broken.Load() != 0 {
			return newBrokenAbort("ordered")
		}
	}
	return nil
}

// OrderedEnd releases the next iteration of the ordered sequence.
func (c *Context) OrderedEnd() error {
	b := c.curLoop
	if b == nil || !b.ordered {
		return &MisuseError{Construct: "ordered",
			Msg: "ordered region outside a loop with the ordered clause"}
	}
	b.region.ordNext.Add(1)
	c.team.wakeAll()
	return nil
}

// Single implements the single construct: SingleBegin returns true on
// exactly one thread of the team (the first to arrive, claimed with a
// compare-and-swap in the atomic layer and a locked check in the
// mutex layer).
type Single struct {
	region *regionState
	regIdx int64
	nowait bool
	hasCP  bool
	won    bool
	ctx    *Context
}

// SingleBegin enters a single construct; the winner executes the
// block. copyprivate declares that the executing thread will publish
// a value with CopyPrivate before calling End; it is incompatible
// with nowait.
func (c *Context) SingleBegin(nowait, copyprivate bool) (*Single, error) {
	if c.wsDepth > 0 {
		return nil, &MisuseError{Construct: "single",
			Msg: "worksharing construct may not be closely nested inside another worksharing construct"}
	}
	if nowait && copyprivate {
		return nil, &MisuseError{Construct: "single",
			Msg: "copyprivate may not be combined with nowait"}
	}
	region, idx := c.enterRegion()
	s := &Single{region: region, regIdx: idx, nowait: nowait, hasCP: copyprivate, ctx: c}
	s.won = region.claim.CompareAndSwap(0, 1)
	c.wsDepth++
	return s, nil
}

// Executes reports whether this thread executes the single block.
func (s *Single) Executes() bool { return s.won }

// CopyPrivate broadcasts v from the executing thread to the team
// members waiting in SingleEnd (the copyprivate clause).
func (s *Single) CopyPrivate(v any) error {
	if !s.won {
		return &MisuseError{Construct: "single",
			Msg: "copyprivate value published by a non-executing thread"}
	}
	s.region.cpMu.Lock()
	s.region.cpVal = v
	s.region.cpMu.Unlock()
	s.region.cpEvent.Set()
	s.ctx.team.wakeAll()
	return nil
}

// End completes the single construct, waiting at the implicit barrier
// unless nowait, and returns the copyprivate value if one was
// published (every thread receives it).
func (s *Single) End() (any, error) {
	c := s.ctx
	c.wsDepth--
	var v any
	if s.hasCP {
		// Every thread observes the published value before leaving.
		// The wait must abort if the executing thread dies before
		// publishing (an exception inside the single body), or the
		// rest of the team would block forever.
		if !s.region.cpEvent.IsSet() {
			c.team.waitFor(func() bool {
				return s.region.cpEvent.IsSet() || c.team.broken.Load() != 0
			})
			if !s.region.cpEvent.IsSet() {
				// Release the region entry even on this error path:
				// returning without leaveRegion would leak the entry
				// in the team's regionTable.
				c.leaveRegion(s.region, s.regIdx)
				return nil, &MisuseError{Construct: "single",
					Msg: "copyprivate value was never published (team broken)"}
			}
		}
		s.region.cpMu.Lock()
		v = s.region.cpVal
		s.region.cpMu.Unlock()
	}
	c.leaveRegion(s.region, s.regIdx)
	if s.nowait {
		return v, nil
	}
	if err := c.team.Barrier(c); err != nil {
		return nil, err
	}
	return v, nil
}

// Sections implements the sections construct: n section blocks are
// distributed over the team through a shared counter; each section id
// is executed exactly once (§III-D).
type Sections struct {
	region *regionState
	regIdx int64
	n      int64
	nowait bool
	ctx    *Context
	last   int64 // last section id executed by this thread, -1 if none
}

// SectionsBegin enters a sections construct with n section blocks.
func (c *Context) SectionsBegin(n int, nowait bool) (*Sections, error) {
	if c.wsDepth > 0 {
		return nil, &MisuseError{Construct: "sections",
			Msg: "worksharing construct may not be closely nested inside another worksharing construct"}
	}
	if n < 0 {
		return nil, &MisuseError{Construct: "sections", Msg: "negative section count"}
	}
	region, idx := c.enterRegion()
	c.wsDepth++
	return &Sections{region: region, regIdx: idx, n: int64(n), nowait: nowait, ctx: c, last: -1}, nil
}

// Next claims the next unexecuted section id, or returns -1 when all
// sections are claimed.
func (s *Sections) Next() int64 {
	id := s.region.iter.Add(1) - 1
	if id >= s.n {
		return -1
	}
	s.last = id
	return id
}

// IsLast reports whether this thread executed the final section
// (lastprivate support).
func (s *Sections) IsLast() bool { return s.last == s.n-1 }

// End completes the sections construct with its implicit barrier
// unless nowait.
func (s *Sections) End() error {
	c := s.ctx
	c.wsDepth--
	c.leaveRegion(s.region, s.regIdx)
	if s.nowait {
		return nil
	}
	return c.team.Barrier(c)
}

// Master reports whether this thread is the team master (thread 0).
// The master construct has no implied barrier.
func (c *Context) Master() bool { return c.num == 0 }
