package rt

import (
	"fmt"
	"testing"
)

// Scheduler benchmarks: the task-heavy patterns of the paper's
// evaluation (qsort's divide-and-conquer and Fig. 4's fibonacci)
// driven directly through the runtime, contrasting the work-stealing
// scheduler against the legacy shared-list queue at team sizes where
// the list's O(n) locked scan dominates.
//
//	go test -run=NONE -bench=BenchmarkTaskSched ./internal/rt/

func benchSchedModes(b *testing.B, threads int, body func(c *Context) error) {
	for _, m := range []schedMode{schedList, schedSteal} {
		for _, l := range bothLayers {
			b.Run(fmt.Sprintf("%v/%v/%dT", m, l, threads), func(b *testing.B) {
				r := newSchedRuntime(l, m)
				ctx := r.NewContext()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := r.Parallel(ctx, ParallelOpts{NumThreads: threads}, body); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkTaskSchedQsort(b *testing.B) {
	const n = 20000
	data := make([]int, n)
	var qsort func(c *Context, lo, hi int) error
	qsort = func(c *Context, lo, hi int) error {
		if hi-lo < 2 {
			return nil
		}
		p := data[(lo+hi)/2]
		i, j := lo, hi-1
		for i <= j {
			for data[i] < p {
				i++
			}
			for data[j] > p {
				j--
			}
			if i <= j {
				data[i], data[j] = data[j], data[i]
				i++
				j--
			}
		}
		opts := TaskOpts{If: hi-lo > 256, IfSet: true}
		if err := c.SubmitTask(opts, func(tc *Context) error { return qsort(tc, lo, j+1) }); err != nil {
			return err
		}
		if err := c.SubmitTask(opts, func(tc *Context) error { return qsort(tc, i, hi) }); err != nil {
			return err
		}
		return c.TaskWait()
	}
	benchSchedModes(b, 8, func(c *Context) error {
		s, err := c.SingleBegin(false, false)
		if err != nil {
			return err
		}
		if s.Executes() {
			for i := range data {
				data[i] = (i * 7919) % n
			}
			if err := qsort(c, 0, n); err != nil {
				return err
			}
		}
		_, err = s.End()
		return err
	})
}

func BenchmarkTaskSchedFib(b *testing.B) {
	benchSchedModes(b, 8, func(c *Context) error {
		s, err := c.SingleBegin(false, false)
		if err != nil {
			return err
		}
		if s.Executes() {
			v, err := fib(c, 21)
			if err != nil {
				return err
			}
			if v != 10946 {
				return fmt.Errorf("fib(21) = %d", v)
			}
		}
		_, err = s.End()
		return err
	})
}

// BenchmarkTaskSchedFlat submits a flat burst of trivial tasks from
// one producer — the pattern where the legacy list queue's take() is
// O(queue length) and every barrier wake rescans the whole chain.
func BenchmarkTaskSchedFlat(b *testing.B) {
	const tasks = 2000
	benchSchedModes(b, 8, func(c *Context) error {
		s, err := c.SingleBegin(false, false)
		if err != nil {
			return err
		}
		if s.Executes() {
			for i := 0; i < tasks; i++ {
				if err := c.SubmitTask(TaskOpts{}, func(*Context) error { return nil }); err != nil {
					return err
				}
			}
		}
		_, err = s.End()
		return err
	})
}
