package rt

import (
	"sync"
	"sync/atomic"
)

// This file implements the team task scheduler. The default is a
// work-stealing scheduler: each team member owns a bounded Chase–Lev
// deque (owner pushes and pops at the bottom, thieves steal from the
// top), with a shared overflow list absorbing submission bursts that
// exceed a deque's capacity. Consumers (barriers, taskwait) drain the
// local deque first, then the overflow list, then steal round-robin
// from the other members. Retirement is O(1): a claimed task leaves
// the scheduler entirely, so completed tasks are never retained or
// re-scanned — unlike the paper's shared linked list, which both
// sync-layer flavours keep available as the "list" scheduler for
// differential testing (OMP4GO_TASK_SCHED=list).
//
// The paper's runtime-vs-cruntime contrast is preserved: LayerAtomic
// deques coordinate with sync/atomic loads and compare-and-swap (the
// classic Chase–Lev protocol), LayerMutex deques guard a slice with a
// per-deque mutex.

// schedMode selects the team task-scheduler implementation.
type schedMode int

const (
	// schedSteal is the per-thread work-stealing deque scheduler.
	schedSteal schedMode = iota
	// schedList is the paper's shared linked-list queue (§III-E),
	// retained for differential tests and before/after benchmarks.
	schedList
)

func parseSchedMode(v string) schedMode {
	if v == "list" {
		return schedList
	}
	return schedSteal
}

func (m schedMode) String() string {
	if m == schedList {
		return "list"
	}
	return "steal"
}

// taskScheduler is the team task pool. submit places a task from
// thread self (reporting whether it landed on the overflow list), and
// take claims a free task for thread self, marking it in-progress and
// reporting the thread it was taken from (victim == self for a local
// pop, -1 for the overflow list or the legacy shared queue).
type taskScheduler interface {
	submit(self int, t *task) (overflowed bool)
	take(self int) (tk *task, victim int)
	// hasRunnable reports whether an unclaimed task is visible.
	hasRunnable() bool
	// retained counts task references the scheduler still holds —
	// a probe for tests asserting O(1) retirement (it may over-count
	// while threads are actively claiming, so probe at quiescence).
	retained() int
	// reset prepares the scheduler for reuse by a recycled team. Only
	// called at quiescence after a clean region join (every submitted
	// task completed), so the deques are already empty; reset clears
	// the bookkeeping that outlives the drained tasks.
	reset()
	// depths reports the current per-member deque depths — an
	// introspection probe (watchdog, /debug/omp) that may be called
	// from outside the team while it runs. Schedulers without
	// per-member queues return nil.
	depths() []int
	// runnable counts the unclaimed tasks the scheduler currently
	// holds, wherever they sit (deques, overflow list, shared list) —
	// the introspection complement of hasRunnable, also callable from
	// outside the team. A point-in-time estimate, like depths.
	runnable() int
}

func newTaskScheduler(l Layer, size int, mode schedMode) taskScheduler {
	if mode == schedList {
		return newListQueue(l)
	}
	s := &stealScheduler{
		deques: make([]deque, size),
		queued: NewCounter(l),
	}
	for i := range s.deques {
		s.deques[i] = newDeque(l)
	}
	return s
}

// dequeCap bounds each per-thread deque; submission bursts beyond it
// spill to the scheduler's shared overflow list. Must be a power of
// two (the atomic deque masks indices instead of dividing).
const dequeCap = 256

// deque is one thread's task deque. push and pop are owner-only
// operations on the bottom; steal takes from the top and may be
// called by any thread.
type deque interface {
	push(t *task) bool // false when full
	pop() *task
	steal() *task
	retained() int
	// size is a race-safe point-in-time depth estimate for
	// introspection; it may be momentarily stale but never tears.
	size() int
}

func newDeque(l Layer) deque {
	if l == LayerAtomic {
		return &atomicDeque{}
	}
	return &mutexDeque{}
}

// atomicDeque is a bounded Chase–Lev work-stealing deque built on
// sync/atomic (the cruntime flavour). top only ever increases, so
// index reuse cannot alias a stale compare-and-swap (no ABA). Claimed
// slots are cleared so completed tasks are not retained by the
// buffer.
type atomicDeque struct {
	top    atomic.Int64
	bottom atomic.Int64
	buf    [dequeCap]atomic.Pointer[task]
}

func (d *atomicDeque) push(t *task) bool {
	b := d.bottom.Load()
	tp := d.top.Load()
	if b-tp >= dequeCap {
		return false
	}
	d.buf[b&(dequeCap-1)].Store(t)
	d.bottom.Store(b + 1)
	return true
}

func (d *atomicDeque) pop() *task {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	tp := d.top.Load()
	if tp > b {
		// Empty: restore bottom.
		d.bottom.Store(b + 1)
		return nil
	}
	slot := &d.buf[b&(dequeCap-1)]
	t := slot.Load()
	if tp == b {
		// Last element: race the thieves for it via top.
		if !d.top.CompareAndSwap(tp, tp+1) {
			t = nil
		}
		d.bottom.Store(b + 1)
		if t != nil {
			slot.Store(nil)
		}
		return t
	}
	slot.Store(nil)
	return t
}

func (d *atomicDeque) steal() *task {
	for {
		tp := d.top.Load()
		b := d.bottom.Load()
		if tp >= b {
			return nil
		}
		slot := &d.buf[tp&(dequeCap-1)]
		t := slot.Load()
		if d.top.CompareAndSwap(tp, tp+1) {
			// Won the element. Clear the slot so the completed task is
			// not retained — but only if it still holds the stolen
			// pointer: once top has advanced the owner may wrap around
			// and push a new task into the same physical slot, and a
			// plain store would wipe it out. Task pointers enter a
			// deque at most once, so the CAS cannot be fooled by ABA.
			slot.CompareAndSwap(t, nil)
			return t
		}
		// Lost to another thief or the owner's pop of the last
		// element; retry from the new top.
	}
}

func (d *atomicDeque) size() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

func (d *atomicDeque) retained() int {
	n := 0
	for i := range d.buf {
		if d.buf[i].Load() != nil {
			n++
		}
	}
	return n
}

// mutexDeque is the Python-runtime flavour: one mutex per deque
// guards a slice used as the deque (owner end at the back, thief end
// at the front).
type mutexDeque struct {
	mu  sync.Mutex
	buf []*task
}

func (d *mutexDeque) push(t *task) bool {
	d.mu.Lock()
	if len(d.buf) >= dequeCap {
		d.mu.Unlock()
		return false
	}
	d.buf = append(d.buf, t)
	d.mu.Unlock()
	return true
}

func (d *mutexDeque) pop() *task {
	d.mu.Lock()
	n := len(d.buf)
	if n == 0 {
		d.mu.Unlock()
		return nil
	}
	t := d.buf[n-1]
	d.buf[n-1] = nil
	d.buf = d.buf[:n-1]
	d.mu.Unlock()
	return t
}

func (d *mutexDeque) steal() *task {
	d.mu.Lock()
	if len(d.buf) == 0 {
		d.mu.Unlock()
		return nil
	}
	t := d.buf[0]
	d.buf[0] = nil
	d.buf = d.buf[1:]
	if len(d.buf) == 0 {
		d.buf = nil // release the drifted backing array
	}
	d.mu.Unlock()
	return t
}

func (d *mutexDeque) size() int {
	d.mu.Lock()
	n := len(d.buf)
	d.mu.Unlock()
	return n
}

func (d *mutexDeque) retained() int {
	d.mu.Lock()
	n := 0
	for _, t := range d.buf {
		if t != nil {
			n++
		}
	}
	d.mu.Unlock()
	return n
}

// stealScheduler distributes tasks over per-thread deques with a
// shared overflow list. queued tracks visible unclaimed tasks so
// hasRunnable is O(1) — the barrier wake predicate no longer rescans
// the pool.
type stealScheduler struct {
	deques []deque
	queued Counter

	ovMu     sync.Mutex
	overflow []*task
}

func (s *stealScheduler) submit(self int, t *task) bool {
	// Publish the count first: a waiter woken between the push and a
	// late Add would otherwise see hasRunnable() == false and go back
	// to sleep until the submitter's wakeAll.
	s.queued.Add(1)
	if self < len(s.deques) && s.deques[self].push(t) {
		return false
	}
	s.ovMu.Lock()
	s.overflow = append(s.overflow, t)
	s.ovMu.Unlock()
	return true
}

func (s *stealScheduler) take(self int) (*task, int) {
	// Fast path for task-free regions: no queued work anywhere means
	// no deque scan. A push that races past this read is caught by
	// the caller's wait predicate (hasRunnable reads the same
	// counter), which the submitter's wake-up re-evaluates.
	if s.queued.Load() == 0 {
		return nil, -1
	}
	if self >= len(s.deques) {
		self = 0
	}
	// 1. Local deque (LIFO: best cache locality for recursive tasks).
	for {
		t := s.deques[self].pop()
		if t == nil {
			break
		}
		s.queued.Add(-1)
		if t.state.CompareAndSwap(taskFree, taskInProgress) {
			return t, self
		}
	}
	// 2. Overflow list (FIFO: burst order preserved).
	for {
		s.ovMu.Lock()
		var t *task
		if n := len(s.overflow); n > 0 {
			t = s.overflow[0]
			s.overflow[0] = nil
			s.overflow = s.overflow[1:]
			if len(s.overflow) == 0 {
				s.overflow = nil
			}
		}
		s.ovMu.Unlock()
		if t == nil {
			break
		}
		s.queued.Add(-1)
		if t.state.CompareAndSwap(taskFree, taskInProgress) {
			return t, -1
		}
	}
	// 3. Steal round-robin from the other members, oldest first.
	n := len(s.deques)
	for i := 1; i < n; i++ {
		victim := (self + i) % n
		if t := s.deques[victim].steal(); t != nil {
			s.queued.Add(-1)
			if t.state.CompareAndSwap(taskFree, taskInProgress) {
				return t, victim
			}
		}
	}
	return nil, -1
}

func (s *stealScheduler) hasRunnable() bool {
	return s.queued.Load() > 0
}

// runnable: queued counts every visible unclaimed task — deques and
// the overflow list — exactly (submit adds, take subtracts). Clamped
// because the submit-side Add publishes before the push lands.
func (s *stealScheduler) runnable() int {
	if n := s.queued.Load(); n > 0 {
		return int(n)
	}
	return 0
}

func (s *stealScheduler) depths() []int {
	out := make([]int, len(s.deques))
	for i, d := range s.deques {
		out[i] = d.size()
	}
	return out
}

func (s *stealScheduler) reset() {
	s.queued.Store(0)
	s.ovMu.Lock()
	s.overflow = nil
	s.ovMu.Unlock()
}

func (s *stealScheduler) retained() int {
	n := 0
	for _, d := range s.deques {
		n += d.retained()
	}
	s.ovMu.Lock()
	for _, t := range s.overflow {
		if t != nil {
			n++
		}
	}
	s.ovMu.Unlock()
	return n
}
