package rt

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/omp4go/omp4go/internal/metrics"
	"github.com/omp4go/omp4go/internal/ompt"
	"github.com/omp4go/omp4go/internal/prof"
)

// This file implements the always-on flight recorder: a bounded ring
// of recent runtime events plus periodic introspection snapshots,
// flushed to a timestamped post-mortem dump when something goes wrong
// — a watchdog stall report, a serve-layer budget kill, or an explicit
// FlightDump call. The recorder is an ompt.Tool, so it rides the same
// hook sites as tracing; unlike the Tracer's single-producer rings its
// rings are mutex-protected, so a dump can snapshot them while the
// producers are still running (which is the whole point: the program
// is wedged or being killed, not joined).

const (
	// defaultFlightRingSize bounds the per-thread event ring. Smaller
	// than the Tracer default: the recorder keeps "what just happened",
	// not a full program trace.
	defaultFlightRingSize = 1 << 12
	// flightSampleInterval is the cadence of periodic introspection
	// snapshots; maxFlightSnaps bounds how many are retained.
	flightSampleInterval = 250 * time.Millisecond
	maxFlightSnaps       = 64
	// maxFlightDumps caps dump files written over the recorder's
	// lifetime so a stall storm cannot fill the disk.
	maxFlightDumps = 32
)

// defaultFlightDir is where OMP4GO_FLIGHT=on (without a path) puts
// dumps.
func defaultFlightDir() string {
	return filepath.Join(os.TempDir(), "omp4go-flight")
}

// flightRing is a mutex-protected bounded ring of records. The mutex
// (vs the Tracer's lock-free single-producer scheme) buys the one
// property a flight recorder needs: a coherent snapshot while the
// producer is live.
type flightRing struct {
	mu   sync.Mutex
	buf  []ompt.Record
	head uint64 // total records ever pushed
}

func (r *flightRing) push(rec ompt.Record) {
	r.mu.Lock()
	r.buf[r.head%uint64(len(r.buf))] = rec
	r.head++
	r.mu.Unlock()
}

func (r *flightRing) snapshot() (recs []ompt.Record, dropped uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	if r.head <= n {
		out := make([]ompt.Record, r.head)
		copy(out, r.buf[:r.head])
		return out, 0
	}
	out := make([]ompt.Record, n)
	start := r.head % n
	copy(out, r.buf[start:])
	copy(out[n-start:], r.buf[:start])
	return out, r.head - n
}

// FlightSnap is one periodic introspection sample retained by the
// recorder: the in-flight regions as the sampler saw them.
type FlightSnap struct {
	TimeNS  int64        `json:"time_ns"`
	Regions []RegionInfo `json:"regions"`
}

// FlightRecorder is the always-on crash/stall recorder. It implements
// ompt.Tool and is attached alongside any user tool via ompt.Multi.
type FlightRecorder struct {
	rt       *Runtime
	dir      string
	ringSize int

	rings sync.Map // GTID -> *flightRing

	snapMu sync.Mutex
	snaps  []FlightSnap // oldest first, bounded by maxFlightSnaps

	dumps atomic.Int64 // dump files written (for the cap)
	seq   atomic.Int64 // dump filename uniquifier

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// Emit records one event into the emitting thread's ring (ompt.Tool).
func (fr *FlightRecorder) Emit(rec ompt.Record) {
	v, ok := fr.rings.Load(rec.GTID)
	if !ok {
		v, _ = fr.rings.LoadOrStore(rec.GTID, &flightRing{buf: make([]ompt.Record, fr.ringSize)})
	}
	v.(*flightRing).push(rec)
}

// Dir returns the directory dumps are written to.
func (fr *FlightRecorder) Dir() string { return fr.dir }

// Dropped returns the number of events lost to ring wrapping.
func (fr *FlightRecorder) Dropped() uint64 {
	var dropped uint64
	fr.rings.Range(func(_, v any) bool {
		r := v.(*flightRing)
		r.mu.Lock()
		if n := uint64(len(r.buf)); r.head > n {
			dropped += r.head - n
		}
		r.mu.Unlock()
		return true
	})
	return dropped
}

// records merges every ring into one time-sorted stream.
func (fr *FlightRecorder) records() (recs []ompt.Record, dropped uint64) {
	fr.rings.Range(func(_, v any) bool {
		r, d := v.(*flightRing).snapshot()
		recs = append(recs, r...)
		dropped += d
		return true
	})
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time < recs[j].Time })
	return recs, dropped
}

// sample appends one periodic introspection snapshot.
func (fr *FlightRecorder) sample() {
	regions := fr.rt.InflightRegions()
	if regions == nil {
		regions = []RegionInfo{}
	}
	fr.snapMu.Lock()
	fr.snaps = append(fr.snaps, FlightSnap{TimeNS: ompt.Now(), Regions: regions})
	if len(fr.snaps) > maxFlightSnaps {
		fr.snaps = fr.snaps[len(fr.snaps)-maxFlightSnaps:]
	}
	fr.snapMu.Unlock()
}

func (fr *FlightRecorder) recentSnaps() []FlightSnap {
	fr.snapMu.Lock()
	out := make([]FlightSnap, len(fr.snaps))
	copy(out, fr.snaps)
	fr.snapMu.Unlock()
	return out
}

func (fr *FlightRecorder) runSampler() {
	defer close(fr.done)
	tick := time.NewTicker(flightSampleInterval)
	defer tick.Stop()
	for {
		select {
		case <-fr.stop:
			return
		case <-tick.C:
			fr.sample()
		}
	}
}

func (fr *FlightRecorder) stopSampler() {
	fr.stopOnce.Do(func() {
		close(fr.stop)
		<-fr.done
	})
}

// FlightDump is the loadable JSON document a dump file contains.
type FlightDump struct {
	Reason string `json:"reason"`
	// WallTime is the dump's wall-clock moment; TimeNS the monotonic
	// timestamp matching the event stream and snapshot clocks.
	WallTime string         `json:"wall_time"`
	TimeNS   int64          `json:"time_ns"`
	Debug    DebugSnapshot  `json:"debug"`
	Profile  *prof.Snapshot `json:"profile,omitempty"`
	Snaps    []FlightSnap   `json:"snapshots,omitempty"`
	Dropped  uint64         `json:"dropped_events,omitempty"`
}

// Dump writes a post-mortem capture to the recorder's directory: a
// <stem>.json document (reason, debug snapshot, profile breakdown,
// recent introspection samples) and a <stem>.trace.json Chrome trace
// of the retained event ring. It returns the path of the JSON
// document. Dumps beyond maxFlightDumps are dropped with an error so
// a stall storm cannot fill the disk.
func (fr *FlightRecorder) Dump(reason string) (string, error) {
	if fr.dumps.Add(1) > maxFlightDumps {
		fr.dumps.Add(-1)
		return "", fmt.Errorf("flight: dump cap (%d) reached, %q dump dropped", maxFlightDumps, reason)
	}
	fr.sample() // one final snapshot so the dump carries the terminal state
	stem := fmt.Sprintf("omp4go-flight-%s-%03d-%s",
		time.Now().Format("20060102-150405"), fr.seq.Add(1), sanitizeReason(reason))
	doc := FlightDump{
		Reason:   reason,
		WallTime: time.Now().Format(time.RFC3339Nano),
		TimeNS:   ompt.Now(),
		Debug:    fr.rt.DebugSnapshot(),
		Snaps:    fr.recentSnaps(),
	}
	if p := fr.rt.prof.Load(); p != nil {
		s := p.Snapshot()
		doc.Profile = &s
	}
	recs, dropped := fr.records()
	doc.Dropped = dropped

	path := filepath.Join(fr.dir, stem+".json")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	werr := enc.Encode(&doc)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return "", werr
	}

	tf, err := os.Create(filepath.Join(fr.dir, stem+".trace.json"))
	if err != nil {
		return "", err
	}
	werr = ompt.WriteChromeTrace(tf, recs, dropped)
	if cerr := tf.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return "", werr
	}
	fr.rt.metrics.Inc(0, metrics.FlightDumps)
	return path, nil
}

// sanitizeReason makes a dump-trigger reason filename-safe.
func sanitizeReason(reason string) string {
	if reason == "" {
		return "manual"
	}
	out := make([]byte, 0, len(reason))
	for i := 0; i < len(reason); i++ {
		c := reason[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// EnableFlight activates the flight recorder, writing dumps into dir
// ("" selects the default under the OS temp directory). Idempotent:
// a second call returns the existing recorder. The recorder attaches
// itself as an event tool alongside any already-attached tool and
// enables introspection so its periodic snapshots see regions.
func (r *Runtime) EnableFlight(dir string) (*FlightRecorder, error) {
	if fr := r.flight.Load(); fr != nil {
		return fr, nil
	}
	if dir == "" {
		dir = defaultFlightDir()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	fr := &FlightRecorder{
		rt: r, dir: dir, ringSize: defaultFlightRingSize,
		stop: make(chan struct{}), done: make(chan struct{}),
	}
	if !r.flight.CompareAndSwap(nil, fr) {
		close(fr.done) // lost the race; no sampler was started
		return r.flight.Load(), nil
	}
	r.ensureObs()
	r.SetTool(ompt.Multi(r.loadTool(), fr))
	go fr.runSampler()
	return fr, nil
}

// Flight returns the active flight recorder, or nil when disabled.
func (r *Runtime) Flight() *FlightRecorder { return r.flight.Load() }

// FlightDump triggers an on-demand dump; it reports an error when the
// recorder is disabled.
func (r *Runtime) FlightDump(reason string) (string, error) {
	fr := r.flight.Load()
	if fr == nil {
		return "", fmt.Errorf("flight recorder not enabled (set OMP4GO_FLIGHT or call EnableFlight)")
	}
	return fr.Dump(reason)
}
