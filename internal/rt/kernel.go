package rt

import (
	"github.com/omp4go/omp4go/internal/metrics"
	"github.com/omp4go/omp4go/internal/ompt"
)

// Compiled-kernel support: the O(1) static-schedule iterator and the
// unboxed reduction accumulator used by internal/compile's loop
// kernels. A compiled kernel still opens and closes the worksharing
// region through ForInit/ForEnd — region accounting, misuse
// detection, the loop begin/end events and the implicit barrier are
// unchanged — but replaces the per-chunk ForNext protocol with pure
// arithmetic over a StaticIter, which is valid exactly when the
// schedule is static and known at compile time (libgomp performs the
// same precomputation for GOMP_parallel_loop_static).

// StaticIter walks the chunks a single team member owns under a
// static schedule, without touching shared state. Lo and Hi are
// linear iteration indices (0-based, end-exclusive), as in
// LoopBounds.Lo/Hi; callers map them to loop-variable values via the
// loop's start/step.
type StaticIter struct {
	Lo, Hi int64 // current chunk, linear space
	next   int64
	limit  int64
	stride int64 // 0: single block; >0: round-robin chunk stride
	chunk  int64
	total  int64
}

// StaticBounds computes the full iteration set of team member gtid
// (of nthreads) for the loop range(lo, hi, step) under
// schedule(static, chunk) in O(1). chunk == 0 selects the block
// partition (one contiguous chunk per member, the schedule-clause
// default); chunk > 0 the round-robin chunked partition. The
// partition arithmetic is identical to ForInit's static branch, so a
// kernel loop and the bridge path visit bit-identical index sets.
func StaticBounds(gtid, nthreads int, lo, hi, step, chunk int64) StaticIter {
	t := Triplet{Start: lo, End: hi, Step: step}
	total := t.count()
	it := StaticIter{chunk: chunk, total: total}
	if chunk == 0 {
		base := total / int64(nthreads)
		rem := total % int64(nthreads)
		first := int64(gtid)*base + min64(int64(gtid), rem)
		sz := base
		if int64(gtid) < rem {
			sz++
		}
		it.next = first
		it.limit = first + sz
		it.stride = 0
	} else {
		it.next = int64(gtid) * chunk
		it.stride = int64(nthreads) * chunk
		it.limit = total
	}
	return it
}

// Next claims the member's next chunk, updating Lo and Hi. It is the
// arithmetic core of claimNext's static branch with no metrics,
// tracing, or shared-state access.
func (it *StaticIter) Next() bool {
	if it.stride == 0 {
		if it.next >= it.limit {
			return false
		}
		it.Lo, it.Hi = it.next, it.limit
		it.next = it.limit
		return true
	}
	if it.next >= it.limit {
		return false
	}
	it.Lo = it.next
	it.Hi = min64(it.next+it.chunk, it.limit)
	it.next += it.stride
	return true
}

// Last reports whether the most recently claimed chunk contains the
// sequentially last iteration (lastprivate support).
func (it *StaticIter) Last() bool { return it.Hi == it.total }

// Total returns the linear trip count of the partitioned loop.
func (it *StaticIter) Total() int64 { return it.total }

// ReduceNumber constrains ReduceSlot to the unboxed numeric kinds of
// the compiled typed tier.
type ReduceNumber interface {
	~int64 | ~float64
}

// ReduceSlot is a per-member unboxed reduction accumulator: the
// kernel folds its entire iteration share into Val with Combine (no
// locking, no boxing), then merges the partial into the shared
// variable exactly once at the join — under the same
// "__omp_reduction" critical section the transform-lowered merge
// uses, so kernel and bridge members can interleave on one loop.
type ReduceSlot[T ReduceNumber] struct {
	Val T
	op  string
}

// NewReduceSlot validates op against the built-in reduction table
// and returns a slot seeded with the operator's identity element.
func NewReduceSlot[T ReduceNumber](op string) (ReduceSlot[T], error) {
	var s ReduceSlot[T]
	var id interface{}
	var err error
	switch any(s.Val).(type) {
	case int64:
		var v int64
		v, err = IntIdentity(op)
		id = v
	case float64:
		var v float64
		v, err = FloatIdentity(op)
		id = v
	}
	if err != nil {
		return s, err
	}
	s.op = op
	s.Val = id.(T)
	return s, nil
}

// Combine folds v into the accumulator with the slot's operator. The
// op was validated by NewReduceSlot, so no error path remains on the
// per-iteration hot path.
func (s *ReduceSlot[T]) Combine(v T) {
	switch a := any(s.Val).(type) {
	case int64:
		r, _ := ReduceInt(s.op, a, any(v).(int64))
		s.Val = any(r).(T)
	case float64:
		r, _ := ReduceFloat(s.op, a, any(v).(float64))
		s.Val = any(r).(T)
	}
}

// Merge performs the once-per-member join: it enters the shared
// reduction critical section, calls apply with the member's partial
// (which must fold Val into the shared variable), and records the
// merge for tracing. This is the kernel analogue of the
// mutex_lock/merge/mutex_unlock block the transform emits.
func (s *ReduceSlot[T]) Merge(c *Context, apply func(partial T) error) error {
	c.CriticalEnter(reductionCritical)
	defer c.CriticalExit(reductionCritical)
	err := apply(s.Val)
	if err == nil {
		c.ReductionMerge(reductionCritical)
	}
	return err
}

// reductionCritical is the critical-section name guarding
// transform-lowered reduction merges (interp/ompmod.go's
// mutex_lock); kernels merge under the same name so mixed
// kernel/bridge teams on one loop stay mutually excluded.
const reductionCritical = "__omp_reduction"

// KernelEnter records that a compiled loop kernel took over one
// member's share of a worksharing loop: it bumps the
// omp4go_compiled_kernel_loops counter and, when a tool is attached,
// emits an EvKernelEnter event (A = linear trip count, B = static
// chunk size, label = schedule kind) so traces show which loops ran
// on the fast path. Call it after ForInit on each kernel member.
func (c *Context) KernelEnter(total, chunk int64) {
	c.rt.metrics.Inc(c.gtid, metrics.CompiledKernelLoops)
	if c.team.profBucket != nil {
		// Time from here to the loop's ForEnd attributes to the
		// kernel state (closed in ForEnd before the join barrier).
		c.kernelT0 = ompt.Now()
	}
	if c.rt.loadTool() != nil {
		c.emit(ompt.EvKernelEnter, total, chunk, 0, "static")
	}
}

// CompiledKernelsEnabled reports the OMP4GO_COMPILE_KERNELS ICV:
// whether the compiled tier may replace static-schedule worksharing
// loops with runtime-aware kernels. Default on; "off" (or any false
// spelling) restores the interp-bridge lowering so every kernel has
// a differential baseline.
func (r *Runtime) CompiledKernelsEnabled() bool {
	r.icv.mu.Lock()
	defer r.icv.mu.Unlock()
	return r.icv.kernelMode != "off"
}

// SetCompiledKernels overrides the OMP4GO_COMPILE_KERNELS ICV
// programmatically (the bench harness and tests run with an empty
// environment).
func (r *Runtime) SetCompiledKernels(on bool) {
	r.icv.mu.Lock()
	defer r.icv.mu.Unlock()
	if on {
		r.icv.kernelMode = "on"
	} else {
		r.icv.kernelMode = "off"
	}
}
