package minipy

// ScopeInfo describes name binding for one function body, following
// Python's rules: a name assigned anywhere in the function is local
// unless declared global or nonlocal; everything else resolves up the
// lexical chain at run time.
type ScopeInfo struct {
	// Locals are names bound in this scope (parameters, assignment
	// targets, loop variables, def names, with/except aliases), in
	// first-appearance order.
	Locals []string
	// Globals are names declared with the global statement.
	Globals map[string]bool
	// Nonlocals are names declared with the nonlocal statement.
	Nonlocals map[string]bool

	localSet map[string]bool
	skip     Stmt
}

// IsLocal reports whether name binds locally in this scope.
func (s *ScopeInfo) IsLocal(name string) bool { return s.localSet[name] }

// AnalyzeScope computes the ScopeInfo of a function body (or module
// body when params is nil and topLevel).
func AnalyzeScope(params []Param, body []Stmt) *ScopeInfo {
	return AnalyzeScopeExcluding(params, body, nil)
}

// AnalyzeScopeExcluding is AnalyzeScope with one statement subtree
// skipped. The OMP4Py transformer uses it to decide which variables
// are "defined before the block" (shared by default) versus bound
// only inside a directive block (thread-private).
func AnalyzeScopeExcluding(params []Param, body []Stmt, skip Stmt) *ScopeInfo {
	s := &ScopeInfo{
		Globals:   make(map[string]bool),
		Nonlocals: make(map[string]bool),
		localSet:  make(map[string]bool),
		skip:      skip,
	}
	for _, p := range params {
		s.addLocal(p.Name)
	}
	for _, st := range body {
		s.scanStmt(st)
	}
	return s
}

func (s *ScopeInfo) addLocal(name string) {
	if name == "" || s.Globals[name] || s.Nonlocals[name] {
		return
	}
	if !s.localSet[name] {
		s.localSet[name] = true
		s.Locals = append(s.Locals, name)
	}
}

func (s *ScopeInfo) bindTarget(e Expr) {
	switch t := e.(type) {
	case *Name:
		s.addLocal(t.ID)
	case *TupleLit:
		for _, el := range t.Elts {
			s.bindTarget(el)
		}
	case *ListLit:
		for _, el := range t.Elts {
			s.bindTarget(el)
		}
		// Attribute/Index targets do not bind names.
	}
}

// scanStmt walks statements of this scope only; nested FuncDef and
// Lambda bodies are separate scopes (their names bind here, their
// bodies do not).
func (s *ScopeInfo) scanStmt(st Stmt) {
	if s.skip != nil && st == s.skip {
		return
	}
	switch t := st.(type) {
	case *FuncDef:
		s.addLocal(t.Name)
	case *Assign:
		for _, tgt := range t.Targets {
			s.bindTarget(tgt)
		}
	case *AugAssign:
		s.bindTarget(t.Target)
	case *AnnAssign:
		s.bindTarget(t.Target)
	case *For:
		s.bindTarget(t.Target)
		for _, b := range t.Body {
			s.scanStmt(b)
		}
	case *While:
		for _, b := range t.Body {
			s.scanStmt(b)
		}
	case *If:
		for _, b := range t.Body {
			s.scanStmt(b)
		}
		for _, b := range t.Else {
			s.scanStmt(b)
		}
	case *With:
		for _, item := range t.Items {
			if item.Vars != nil {
				s.bindTarget(item.Vars)
			}
		}
		for _, b := range t.Body {
			s.scanStmt(b)
		}
	case *Try:
		for _, b := range t.Body {
			s.scanStmt(b)
		}
		for _, h := range t.Handlers {
			if h.Name != "" {
				s.addLocal(h.Name)
			}
			for _, b := range h.Body {
				s.scanStmt(b)
			}
		}
		for _, b := range t.Final {
			s.scanStmt(b)
		}
	case *Global:
		for _, n := range t.Names {
			t2 := n
			s.Globals[t2] = true
			delete(s.localSet, t2)
		}
	case *Nonlocal:
		for _, n := range t.Names {
			s.Nonlocals[n] = true
			delete(s.localSet, n)
		}
	case *Import:
		for _, a := range t.Names {
			name := a.AsName
			if name == "" {
				name = a.Name
				// "import a.b" binds "a".
				for i := 0; i < len(name); i++ {
					if name[i] == '.' {
						name = name[:i]
						break
					}
				}
			}
			s.addLocal(name)
		}
	case *FromImport:
		for _, a := range t.Names {
			if a.AsName != "" {
				s.addLocal(a.AsName)
			} else {
				s.addLocal(a.Name)
			}
		}
	}
}
