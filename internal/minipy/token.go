// Package minipy implements the front end of MiniPy, the Python
// subset that stands in for CPython in this reproduction: an
// indentation-aware lexer, a recursive-descent parser producing an
// AST, and an unparser that renders the AST back to source (used by
// the @omp dump option and for round-trip testing).
//
// The subset covers what OMP4Py programs and the paper's benchmarks
// need: functions with decorators and default arguments, the with
// statement (OpenMP directives), for/while/if, try/except/finally,
// global/nonlocal, lists, dicts, tuples, slices, lambdas, conditional
// expressions, chained comparisons, augmented assignment, and type
// annotations (`x: float = 0.0`) that drive the CompiledDT mode.
package minipy

import "fmt"

// TokKind classifies MiniPy tokens.
type TokKind int

// Token kinds.
const (
	EOF TokKind = iota
	NEWLINE
	INDENT
	DEDENT
	NAME
	INT
	FLOAT
	STRING
	OP      // operators and punctuation
	KEYWORD // reserved words
)

func (k TokKind) String() string {
	switch k {
	case EOF:
		return "EOF"
	case NEWLINE:
		return "NEWLINE"
	case INDENT:
		return "INDENT"
	case DEDENT:
		return "DEDENT"
	case NAME:
		return "NAME"
	case INT:
		return "INT"
	case FLOAT:
		return "FLOAT"
	case STRING:
		return "STRING"
	case OP:
		return "OP"
	case KEYWORD:
		return "KEYWORD"
	}
	return fmt.Sprintf("TokKind(%d)", int(k))
}

// Position is a source location (1-based line, 0-based column).
type Position struct {
	Line int
	Col  int
}

func (p Position) String() string { return fmt.Sprintf("line %d col %d", p.Line, p.Col+1) }

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Pos  Position
}

func (t Token) String() string {
	switch t.Kind {
	case EOF:
		return "end of file"
	case NEWLINE:
		return "newline"
	case INDENT:
		return "indent"
	case DEDENT:
		return "dedent"
	}
	return fmt.Sprintf("%q", t.Text)
}

var keywords = map[string]bool{
	"def": true, "return": true, "if": true, "elif": true, "else": true,
	"while": true, "for": true, "in": true, "break": true, "continue": true,
	"pass": true, "and": true, "or": true, "not": true, "True": true,
	"False": true, "None": true, "with": true, "as": true, "global": true,
	"nonlocal": true, "import": true, "from": true, "lambda": true,
	"try": true, "except": true, "finally": true, "raise": true,
	"assert": true, "del": true, "is": true,
}

// Error is a MiniPy front-end error with a source position. It plays
// the role of Python's SyntaxError raised by the @omp decorator.
type Error struct {
	Pos  Position
	Msg  string
	File string
}

func (e *Error) Error() string {
	if e.File != "" {
		return fmt.Sprintf("%s: %s: %s", e.File, e.Pos, e.Msg)
	}
	return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
}
