package minipy

import (
	"fmt"
	"strings"
	"unicode"
)

// Lex tokenizes MiniPy source, producing the INDENT/DEDENT structure
// of Python's tokenizer. Tabs count as 8 columns, comments run to end
// of line, newlines inside brackets are implicit continuations, and a
// trailing backslash joins physical lines.
func Lex(src string) ([]Token, error) {
	lx := &lexer{src: src, line: 1, indents: []int{0}}
	if err := lx.run(); err != nil {
		return nil, err
	}
	return lx.toks, nil
}

type lexer struct {
	src     string
	i       int
	line    int
	lineOff int // byte offset of current line start
	toks    []Token
	indents []int
	depth   int // bracket nesting depth
	atStart bool
}

func (lx *lexer) pos() Position { return Position{Line: lx.line, Col: lx.i - lx.lineOff} }

func (lx *lexer) errf(format string, args ...any) error {
	return &Error{Pos: lx.pos(), Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) emit(kind TokKind, text string, pos Position) {
	lx.toks = append(lx.toks, Token{Kind: kind, Text: text, Pos: pos})
}

func (lx *lexer) run() error {
	lx.atStart = true
	for lx.i < len(lx.src) {
		if lx.atStart && lx.depth == 0 {
			// handleIndent manages atStart: blank/comment lines keep
			// it set so the next line is measured too.
			if err := lx.handleIndent(); err != nil {
				return err
			}
			continue
		}
		c := lx.src[lx.i]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			lx.i++
		case c == '#':
			for lx.i < len(lx.src) && lx.src[lx.i] != '\n' {
				lx.i++
			}
		case c == '\\' && lx.i+1 < len(lx.src) && (lx.src[lx.i+1] == '\n' || lx.src[lx.i+1] == '\r'):
			// Explicit line join.
			lx.i++
			if lx.src[lx.i] == '\r' {
				lx.i++
			}
			if lx.i < len(lx.src) && lx.src[lx.i] == '\n' {
				lx.i++
			}
			lx.line++
			lx.lineOff = lx.i
		case c == '\n':
			lx.i++
			if lx.depth == 0 {
				if n := len(lx.toks); n > 0 && lx.toks[n-1].Kind != NEWLINE &&
					lx.toks[n-1].Kind != INDENT && lx.toks[n-1].Kind != DEDENT {
					lx.emit(NEWLINE, "", lx.pos())
				}
				lx.atStart = true
			}
			lx.line++
			lx.lineOff = lx.i
		case c == '"' || c == '\'':
			if err := lx.lexString(); err != nil {
				return err
			}
		case unicode.IsDigit(rune(c)) || (c == '.' && lx.i+1 < len(lx.src) && unicode.IsDigit(rune(lx.src[lx.i+1]))):
			if err := lx.lexNumber(); err != nil {
				return err
			}
		case isNameStart(rune(c)):
			lx.lexName()
		default:
			if err := lx.lexOp(); err != nil {
				return err
			}
		}
	}
	// Final NEWLINE and closing DEDENTs.
	if n := len(lx.toks); n > 0 && lx.toks[n-1].Kind != NEWLINE {
		lx.emit(NEWLINE, "", lx.pos())
	}
	for len(lx.indents) > 1 {
		lx.indents = lx.indents[:len(lx.indents)-1]
		lx.emit(DEDENT, "", lx.pos())
	}
	lx.emit(EOF, "", lx.pos())
	return nil
}

// handleIndent measures the leading whitespace of a logical line and
// emits INDENT/DEDENT tokens. Blank and comment-only lines produce no
// tokens.
func (lx *lexer) handleIndent() error {
	col := 0
	j := lx.i
	for j < len(lx.src) {
		switch lx.src[j] {
		case ' ':
			col++
			j++
		case '\t':
			col += 8 - col%8
			j++
		case '\r':
			j++
		default:
			goto measured
		}
	}
measured:
	if j >= len(lx.src) || lx.src[j] == '\n' || lx.src[j] == '#' {
		// Blank or comment-only line: consume it without tokens.
		lx.i = j
		if j < len(lx.src) && lx.src[j] == '#' {
			for lx.i < len(lx.src) && lx.src[lx.i] != '\n' {
				lx.i++
			}
		}
		if lx.i < len(lx.src) { // the '\n'
			lx.i++
			lx.line++
			lx.lineOff = lx.i
		}
		lx.atStart = true
		if lx.i >= len(lx.src) {
			lx.atStart = false
		}
		return nil
	}
	lx.i = j
	lx.atStart = false
	cur := lx.indents[len(lx.indents)-1]
	switch {
	case col > cur:
		lx.indents = append(lx.indents, col)
		lx.emit(INDENT, "", lx.pos())
	case col < cur:
		for len(lx.indents) > 1 && lx.indents[len(lx.indents)-1] > col {
			lx.indents = lx.indents[:len(lx.indents)-1]
			lx.emit(DEDENT, "", lx.pos())
		}
		if lx.indents[len(lx.indents)-1] != col {
			return lx.errf("unindent does not match any outer indentation level")
		}
	}
	return nil
}

func (lx *lexer) lexString() error {
	pos := lx.pos()
	quote := lx.src[lx.i]
	// Triple-quoted strings.
	if strings.HasPrefix(lx.src[lx.i:], string(quote)+string(quote)+string(quote)) {
		lx.i += 3
		var b strings.Builder
		for {
			if lx.i+2 >= len(lx.src)+1 {
				return lx.errf("unterminated triple-quoted string")
			}
			if strings.HasPrefix(lx.src[lx.i:], string(quote)+string(quote)+string(quote)) {
				lx.i += 3
				lx.emit(STRING, b.String(), pos)
				return nil
			}
			if lx.i >= len(lx.src) {
				return lx.errf("unterminated triple-quoted string")
			}
			if lx.src[lx.i] == '\n' {
				lx.line++
				b.WriteByte('\n')
				lx.i++
				lx.lineOff = lx.i
				continue
			}
			c, err := lx.stringChar(quote)
			if err != nil {
				return err
			}
			b.WriteString(c)
		}
	}
	lx.i++
	var b strings.Builder
	for {
		if lx.i >= len(lx.src) || lx.src[lx.i] == '\n' {
			return lx.errf("unterminated string literal")
		}
		if lx.src[lx.i] == quote {
			lx.i++
			lx.emit(STRING, b.String(), pos)
			return nil
		}
		c, err := lx.stringChar(quote)
		if err != nil {
			return err
		}
		b.WriteString(c)
	}
}

// stringChar consumes one (possibly escaped) character of a string
// body and returns its value.
func (lx *lexer) stringChar(quote byte) (string, error) {
	c := lx.src[lx.i]
	if c != '\\' {
		lx.i++
		return string(c), nil
	}
	if lx.i+1 >= len(lx.src) {
		return "", lx.errf("dangling backslash in string")
	}
	e := lx.src[lx.i+1]
	lx.i += 2
	switch e {
	case 'n':
		return "\n", nil
	case 't':
		return "\t", nil
	case 'r':
		return "\r", nil
	case '\\':
		return "\\", nil
	case '\'':
		return "'", nil
	case '"':
		return "\"", nil
	case '0':
		return "\x00", nil
	case '\n':
		lx.line++
		lx.lineOff = lx.i
		return "", nil // line continuation inside string
	default:
		// Python keeps unknown escapes literally.
		return "\\" + string(e), nil
	}
}

func (lx *lexer) lexNumber() error {
	pos := lx.pos()
	start := lx.i
	isFloat := false
	// Hex/octal/binary integers.
	if lx.src[lx.i] == '0' && lx.i+1 < len(lx.src) &&
		(lx.src[lx.i+1] == 'x' || lx.src[lx.i+1] == 'X' ||
			lx.src[lx.i+1] == 'o' || lx.src[lx.i+1] == 'O' ||
			lx.src[lx.i+1] == 'b' || lx.src[lx.i+1] == 'B') {
		lx.i += 2
		for lx.i < len(lx.src) && (isHexDigit(lx.src[lx.i]) || lx.src[lx.i] == '_') {
			lx.i++
		}
		lx.emit(INT, lx.src[start:lx.i], pos)
		return nil
	}
	for lx.i < len(lx.src) && (unicode.IsDigit(rune(lx.src[lx.i])) || lx.src[lx.i] == '_') {
		lx.i++
	}
	if lx.i < len(lx.src) && lx.src[lx.i] == '.' &&
		!(lx.i+1 < len(lx.src) && lx.src[lx.i+1] == '.') {
		// A trailing attribute access like 1 .real is not supported;
		// dot always extends the number here.
		if lx.i+1 >= len(lx.src) || !isNameStart(rune(lx.src[lx.i+1])) {
			isFloat = true
			lx.i++
			for lx.i < len(lx.src) && (unicode.IsDigit(rune(lx.src[lx.i])) || lx.src[lx.i] == '_') {
				lx.i++
			}
		}
	}
	if lx.i < len(lx.src) && (lx.src[lx.i] == 'e' || lx.src[lx.i] == 'E') {
		j := lx.i + 1
		if j < len(lx.src) && (lx.src[j] == '+' || lx.src[j] == '-') {
			j++
		}
		if j < len(lx.src) && unicode.IsDigit(rune(lx.src[j])) {
			isFloat = true
			lx.i = j
			for lx.i < len(lx.src) && unicode.IsDigit(rune(lx.src[lx.i])) {
				lx.i++
			}
		}
	}
	text := strings.ReplaceAll(lx.src[start:lx.i], "_", "")
	if isFloat {
		lx.emit(FLOAT, text, pos)
	} else {
		lx.emit(INT, text, pos)
	}
	return nil
}

func (lx *lexer) lexName() {
	pos := lx.pos()
	start := lx.i
	for lx.i < len(lx.src) && isNameCont(rune(lx.src[lx.i])) {
		lx.i++
	}
	text := lx.src[start:lx.i]
	if keywords[text] {
		lx.emit(KEYWORD, text, pos)
	} else {
		lx.emit(NAME, text, pos)
	}
}

// operator tokens, longest first.
var operators = []string{
	"**=", "//=", "<<=", ">>=",
	"**", "//", "<<", ">>", "<=", ">=", "==", "!=", "->",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
	"+", "-", "*", "/", "%", "<", ">", "=", "(", ")", "[", "]",
	"{", "}", ",", ":", ".", ";", "@", "&", "|", "^", "~",
}

func (lx *lexer) lexOp() error {
	pos := lx.pos()
	rest := lx.src[lx.i:]
	for _, op := range operators {
		if strings.HasPrefix(rest, op) {
			switch op {
			case "(", "[", "{":
				lx.depth++
			case ")", "]", "}":
				if lx.depth > 0 {
					lx.depth--
				}
			}
			lx.i += len(op)
			lx.emit(OP, op, pos)
			return nil
		}
	}
	return lx.errf("unexpected character %q", lx.src[lx.i])
}

func isNameStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isNameCont(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}
