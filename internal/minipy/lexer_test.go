package minipy

import (
	"strings"
	"testing"
)

func lexKinds(t *testing.T, src string) []TokKind {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	kinds := make([]TokKind, len(toks))
	for i, tok := range toks {
		kinds[i] = tok.Kind
	}
	return kinds
}

func lexTexts(t *testing.T, src string) []string {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	var out []string
	for _, tok := range toks {
		if tok.Kind == NAME || tok.Kind == OP || tok.Kind == KEYWORD ||
			tok.Kind == INT || tok.Kind == FLOAT || tok.Kind == STRING {
			out = append(out, tok.Text)
		}
	}
	return out
}

func TestLexSimpleLine(t *testing.T) {
	got := lexTexts(t, "x = 1 + 2\n")
	want := []string{"x", "=", "1", "+", "2"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestLexIndentation(t *testing.T) {
	src := "if a:\n    x = 1\n    y = 2\nz = 3\n"
	kinds := lexKinds(t, src)
	var indents, dedents int
	for _, k := range kinds {
		switch k {
		case INDENT:
			indents++
		case DEDENT:
			dedents++
		}
	}
	if indents != 1 || dedents != 1 {
		t.Fatalf("indents=%d dedents=%d, want 1/1", indents, dedents)
	}
}

func TestLexNestedIndentation(t *testing.T) {
	src := "if a:\n  if b:\n    x = 1\ny = 2\n"
	kinds := lexKinds(t, src)
	var indents, dedents int
	for _, k := range kinds {
		switch k {
		case INDENT:
			indents++
		case DEDENT:
			dedents++
		}
	}
	if indents != 2 || dedents != 2 {
		t.Fatalf("indents=%d dedents=%d, want 2/2", indents, dedents)
	}
}

func TestLexDedentAtEOF(t *testing.T) {
	src := "if a:\n    x = 1" // no trailing newline
	kinds := lexKinds(t, src)
	last3 := kinds[len(kinds)-3:]
	if last3[0] != NEWLINE || last3[1] != DEDENT || last3[2] != EOF {
		t.Fatalf("tail = %v", last3)
	}
}

func TestLexBadDedent(t *testing.T) {
	src := "if a:\n    x = 1\n  y = 2\n"
	if _, err := Lex(src); err == nil {
		t.Fatal("expected unindent error")
	}
}

func TestLexBlankAndCommentLines(t *testing.T) {
	src := "x = 1\n\n# comment\n   \ny = 2  # trailing\n"
	got := lexTexts(t, src)
	want := "x = 1 y = 2"
	if strings.Join(got, " ") != want {
		t.Fatalf("got %v", got)
	}
	// Blank lines inside a block do not change indentation.
	src2 := "if a:\n    x = 1\n\n    y = 2\n"
	kinds := lexKinds(t, src2)
	var dedents int
	for _, k := range kinds {
		if k == DEDENT {
			dedents++
		}
	}
	if dedents != 1 {
		t.Fatalf("dedents = %d, want 1", dedents)
	}
}

func TestLexImplicitContinuation(t *testing.T) {
	src := "x = (1 +\n     2 +\n     3)\ny = [1,\n 2]\n"
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	newlines := 0
	for _, tok := range toks {
		if tok.Kind == NEWLINE {
			newlines++
		}
	}
	if newlines != 2 {
		t.Fatalf("newlines = %d, want 2 (brackets suppress them)", newlines)
	}
}

func TestLexExplicitContinuation(t *testing.T) {
	got := lexTexts(t, "x = 1 + \\\n    2\n")
	want := []string{"x", "=", "1", "+", "2"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("got %v", got)
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := Lex("a = 42 3.14 1e9 2.5e-3 0xFF 0b101 0o17 1_000_000 .5\n")
	if err != nil {
		t.Fatal(err)
	}
	var ints, floats []string
	for _, tok := range toks {
		switch tok.Kind {
		case INT:
			ints = append(ints, tok.Text)
		case FLOAT:
			floats = append(floats, tok.Text)
		}
	}
	wantInts := []string{"42", "0xFF", "0b101", "0o17", "1000000"}
	wantFloats := []string{"3.14", "1e9", "2.5e-3", ".5"}
	if strings.Join(ints, " ") != strings.Join(wantInts, " ") {
		t.Fatalf("ints = %v, want %v", ints, wantInts)
	}
	if strings.Join(floats, " ") != strings.Join(wantFloats, " ") {
		t.Fatalf("floats = %v, want %v", floats, wantFloats)
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := Lex(`s = "hi" 'there' "esc\n\t\"q\"" """triple
line"""` + "\n")
	if err != nil {
		t.Fatal(err)
	}
	var strs []string
	for _, tok := range toks {
		if tok.Kind == STRING {
			strs = append(strs, tok.Text)
		}
	}
	if len(strs) != 4 {
		t.Fatalf("strings = %q", strs)
	}
	if strs[0] != "hi" || strs[1] != "there" {
		t.Fatalf("plain strings = %q", strs[:2])
	}
	if strs[2] != "esc\n\t\"q\"" {
		t.Fatalf("escaped = %q", strs[2])
	}
	if strs[3] != "triple\nline" {
		t.Fatalf("triple = %q", strs[3])
	}
}

func TestLexUnterminatedString(t *testing.T) {
	if _, err := Lex("s = \"oops\n"); err == nil {
		t.Fatal("expected unterminated string error")
	}
	if _, err := Lex("s = \"\"\"oops\n"); err == nil {
		t.Fatal("expected unterminated triple string error")
	}
}

func TestLexKeywordsVsNames(t *testing.T) {
	toks, err := Lex("for forx in ink\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != KEYWORD || toks[0].Text != "for" {
		t.Fatalf("tok0 = %v", toks[0])
	}
	if toks[1].Kind != NAME || toks[1].Text != "forx" {
		t.Fatalf("tok1 = %v", toks[1])
	}
	if toks[2].Kind != KEYWORD || toks[2].Text != "in" {
		t.Fatalf("tok2 = %v", toks[2])
	}
	if toks[3].Kind != NAME || toks[3].Text != "ink" {
		t.Fatalf("tok3 = %v", toks[3])
	}
}

func TestLexMultiCharOperators(t *testing.T) {
	got := lexTexts(t, "a **= b // c << d >= e != f -> g\n")
	want := []string{"a", "**=", "b", "//", "c", "<<", "d", ">=", "e", "!=", "f", "->", "g"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("got %v", got)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a = 1\nbb = 2\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 0 {
		t.Fatalf("a at %v", toks[0].Pos)
	}
	var bb Token
	for _, tok := range toks {
		if tok.Text == "bb" {
			bb = tok
		}
	}
	if bb.Pos.Line != 2 || bb.Pos.Col != 0 {
		t.Fatalf("bb at %v", bb.Pos)
	}
}

func TestLexUnexpectedChar(t *testing.T) {
	if _, err := Lex("a = 1 ?\n"); err == nil {
		t.Fatal("expected error for '?'")
	}
}
