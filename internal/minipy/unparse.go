package minipy

import (
	"fmt"
	"strconv"
	"strings"
)

// Unparse renders an AST back to MiniPy source. It is used by the
// @omp dump option to show transformed code and by round-trip tests
// (parse(unparse(ast)) must equal ast structurally).
func Unparse(n Node) string {
	var u unparser
	switch t := n.(type) {
	case *Module:
		u.stmts(t.Body)
	case Stmt:
		u.stmt(t)
	case Expr:
		u.expr(t, 0)
	}
	return u.b.String()
}

type unparser struct {
	b      strings.Builder
	indent int
}

func (u *unparser) line(format string, args ...any) {
	u.b.WriteString(strings.Repeat("    ", u.indent))
	fmt.Fprintf(&u.b, format, args...)
	u.b.WriteByte('\n')
}

func (u *unparser) stmts(body []Stmt) {
	for _, s := range body {
		u.stmt(s)
	}
}

func (u *unparser) block(body []Stmt) {
	u.indent++
	if len(body) == 0 {
		u.line("pass")
	} else {
		u.stmts(body)
	}
	u.indent--
}

func (u *unparser) stmt(s Stmt) {
	switch t := s.(type) {
	case *FuncDef:
		for _, d := range t.Decorators {
			u.line("@%s", u.exprStr(d))
		}
		var params []string
		for _, p := range t.Params {
			ps := p.Name
			if p.Annotation != nil {
				ps += ": " + u.exprStr(p.Annotation)
			}
			if p.Default != nil {
				ps += " = " + u.exprStr(p.Default)
			}
			params = append(params, ps)
		}
		ret := ""
		if t.Returns != nil {
			ret = " -> " + u.exprStr(t.Returns)
		}
		u.line("def %s(%s)%s:", t.Name, strings.Join(params, ", "), ret)
		u.block(t.Body)
	case *Return:
		if t.Value == nil {
			u.line("return")
		} else {
			u.line("return %s", u.exprStr(t.Value))
		}
	case *If:
		u.unparseIf(t, "if")
	case *While:
		u.line("while %s:", u.exprStr(t.Cond))
		u.block(t.Body)
	case *For:
		u.line("for %s in %s:", u.exprStr(t.Target), u.exprStr(t.Iter))
		u.block(t.Body)
	case *Assign:
		var parts []string
		for _, tgt := range t.Targets {
			parts = append(parts, u.exprStr(tgt))
		}
		u.line("%s = %s", strings.Join(parts, " = "), u.exprStr(t.Value))
	case *AugAssign:
		u.line("%s %s= %s", u.exprStr(t.Target), t.Op, u.exprStr(t.Value))
	case *AnnAssign:
		if t.Value != nil {
			u.line("%s: %s = %s", u.exprStr(t.Target), u.exprStr(t.Annotation), u.exprStr(t.Value))
		} else {
			u.line("%s: %s", u.exprStr(t.Target), u.exprStr(t.Annotation))
		}
	case *ExprStmt:
		u.line("%s", u.exprStr(t.X))
	case *With:
		var items []string
		for _, it := range t.Items {
			s := u.exprStr(it.Context)
			if it.Vars != nil {
				s += " as " + u.exprStr(it.Vars)
			}
			items = append(items, s)
		}
		u.line("with %s:", strings.Join(items, ", "))
		u.block(t.Body)
	case *Global:
		u.line("global %s", strings.Join(t.Names, ", "))
	case *Nonlocal:
		u.line("nonlocal %s", strings.Join(t.Names, ", "))
	case *Import:
		var parts []string
		for _, a := range t.Names {
			if a.AsName != "" {
				parts = append(parts, a.Name+" as "+a.AsName)
			} else {
				parts = append(parts, a.Name)
			}
		}
		u.line("import %s", strings.Join(parts, ", "))
	case *FromImport:
		if t.Star {
			u.line("from %s import *", t.Module)
		} else {
			var parts []string
			for _, a := range t.Names {
				if a.AsName != "" {
					parts = append(parts, a.Name+" as "+a.AsName)
				} else {
					parts = append(parts, a.Name)
				}
			}
			u.line("from %s import %s", t.Module, strings.Join(parts, ", "))
		}
	case *Break:
		u.line("break")
	case *Continue:
		u.line("continue")
	case *Pass:
		u.line("pass")
	case *Try:
		u.line("try:")
		u.block(t.Body)
		for _, h := range t.Handlers {
			switch {
			case h.Type == nil:
				u.line("except:")
			case h.Name != "":
				u.line("except %s as %s:", u.exprStr(h.Type), h.Name)
			default:
				u.line("except %s:", u.exprStr(h.Type))
			}
			u.block(h.Body)
		}
		if t.Final != nil {
			u.line("finally:")
			u.block(t.Final)
		}
	case *Raise:
		if t.Exc == nil {
			u.line("raise")
		} else {
			u.line("raise %s", u.exprStr(t.Exc))
		}
	case *Assert:
		if t.Msg != nil {
			u.line("assert %s, %s", u.exprStr(t.Test), u.exprStr(t.Msg))
		} else {
			u.line("assert %s", u.exprStr(t.Test))
		}
	case *Del:
		var parts []string
		for _, tgt := range t.Targets {
			parts = append(parts, u.exprStr(tgt))
		}
		u.line("del %s", strings.Join(parts, ", "))
	default:
		u.line("# <unknown statement %T>", s)
	}
}

func (u *unparser) unparseIf(t *If, kw string) {
	u.line("%s %s:", kw, u.exprStr(t.Cond))
	u.block(t.Body)
	if len(t.Else) == 0 {
		return
	}
	if inner, ok := t.Else[0].(*If); ok && len(t.Else) == 1 {
		u.unparseIf(inner, "elif")
		return
	}
	u.line("else:")
	u.block(t.Else)
}

func (u *unparser) exprStr(e Expr) string {
	var sub unparser
	sub.expr(e, 0)
	return sub.b.String()
}

// Operator precedence levels for parenthesization, mirroring the
// parser's grammar.
var binPrec = map[string]int{
	"or": 1, "and": 2,
	"==": 4, "!=": 4, "<": 4, "<=": 4, ">": 4, ">=": 4,
	"in": 4, "not in": 4, "is": 4, "is not": 4,
	"|": 5, "^": 6, "&": 7, "<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "//": 10, "%": 10,
	"**": 12,
}

func (u *unparser) expr(e Expr, prec int) {
	switch t := e.(type) {
	case *Name:
		u.b.WriteString(t.ID)
	case *IntLit:
		u.b.WriteString(strconv.FormatInt(t.V, 10))
	case *FloatLit:
		s := strconv.FormatFloat(t.V, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		u.b.WriteString(s)
	case *StrLit:
		u.b.WriteString(quotePy(t.V))
	case *BoolLit:
		if t.V {
			u.b.WriteString("True")
		} else {
			u.b.WriteString("False")
		}
	case *NoneLit:
		u.b.WriteString("None")
	case *BinOp:
		p := binPrec[t.Op]
		open := prec > p
		if open {
			u.b.WriteByte('(')
		}
		u.expr(t.L, p)
		u.b.WriteString(" " + t.Op + " ")
		u.expr(t.R, p+1)
		if open {
			u.b.WriteByte(')')
		}
	case *BoolOp:
		p := binPrec[t.Op]
		open := prec > p
		if open {
			u.b.WriteByte('(')
		}
		for i, v := range t.Values {
			if i > 0 {
				u.b.WriteString(" " + t.Op + " ")
			}
			u.expr(v, p+1)
		}
		if open {
			u.b.WriteByte(')')
		}
	case *UnaryOp:
		open := prec > 11
		if open {
			u.b.WriteByte('(')
		}
		if t.Op == "not" {
			u.b.WriteString("not ")
			u.expr(t.X, 3)
		} else {
			u.b.WriteString(t.Op)
			u.expr(t.X, 11)
		}
		if open {
			u.b.WriteByte(')')
		}
	case *Compare:
		open := prec > 4
		if open {
			u.b.WriteByte('(')
		}
		u.expr(t.L, 5)
		for i, op := range t.Ops {
			u.b.WriteString(" " + op + " ")
			u.expr(t.Rights[i], 5)
		}
		if open {
			u.b.WriteByte(')')
		}
	case *Call:
		u.expr(t.Fn, 13)
		u.b.WriteByte('(')
		for i, a := range t.Args {
			if i > 0 {
				u.b.WriteString(", ")
			}
			u.expr(a, 0)
		}
		for i, kw := range t.Keywords {
			if i > 0 || len(t.Args) > 0 {
				u.b.WriteString(", ")
			}
			u.b.WriteString(kw.Name + "=")
			u.expr(kw.Value, 0)
		}
		u.b.WriteByte(')')
	case *Attribute:
		u.expr(t.X, 13)
		u.b.WriteString("." + t.Name)
	case *Index:
		u.expr(t.X, 13)
		u.b.WriteByte('[')
		u.expr(t.I, 0)
		u.b.WriteByte(']')
	case *SliceExpr:
		u.expr(t.X, 13)
		u.b.WriteByte('[')
		if t.Lo != nil {
			u.expr(t.Lo, 0)
		}
		u.b.WriteByte(':')
		if t.Hi != nil {
			u.expr(t.Hi, 0)
		}
		if t.Step != nil {
			u.b.WriteByte(':')
			u.expr(t.Step, 0)
		}
		u.b.WriteByte(']')
	case *ListLit:
		u.b.WriteByte('[')
		for i, el := range t.Elts {
			if i > 0 {
				u.b.WriteString(", ")
			}
			u.expr(el, 0)
		}
		u.b.WriteByte(']')
	case *TupleLit:
		u.b.WriteByte('(')
		for i, el := range t.Elts {
			if i > 0 {
				u.b.WriteString(", ")
			}
			u.expr(el, 0)
		}
		if len(t.Elts) == 1 {
			u.b.WriteByte(',')
		}
		u.b.WriteByte(')')
	case *DictLit:
		u.b.WriteByte('{')
		for i := range t.Keys {
			if i > 0 {
				u.b.WriteString(", ")
			}
			u.expr(t.Keys[i], 0)
			u.b.WriteString(": ")
			u.expr(t.Vals[i], 0)
		}
		u.b.WriteByte('}')
	case *SetLit:
		u.b.WriteByte('{')
		for i, el := range t.Elts {
			if i > 0 {
				u.b.WriteString(", ")
			}
			u.expr(el, 0)
		}
		u.b.WriteByte('}')
	case *IfExp:
		open := prec > 0
		if open {
			u.b.WriteByte('(')
		}
		u.expr(t.Then, 1)
		u.b.WriteString(" if ")
		u.expr(t.Cond, 1)
		u.b.WriteString(" else ")
		u.expr(t.Else, 0)
		if open {
			u.b.WriteByte(')')
		}
	case *Lambda:
		open := prec > 0
		if open {
			u.b.WriteByte('(')
		}
		u.b.WriteString("lambda")
		for i, p := range t.Params {
			if i == 0 {
				u.b.WriteByte(' ')
			} else {
				u.b.WriteString(", ")
			}
			u.b.WriteString(p.Name)
			if p.Default != nil {
				u.b.WriteString("=")
				u.expr(p.Default, 0)
			}
		}
		u.b.WriteString(": ")
		u.expr(t.Body, 0)
		if open {
			u.b.WriteByte(')')
		}
	default:
		fmt.Fprintf(&u.b, "<unknown expr %T>", e)
	}
}

func quotePy(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}
