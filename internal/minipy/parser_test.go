package minipy

import (
	"reflect"
	"strings"
	"testing"
)

func parse(t *testing.T, src string) *Module {
	t.Helper()
	m, err := Parse(src, "test.py")
	if err != nil {
		t.Fatalf("Parse failed: %v\nsource:\n%s", err, src)
	}
	return m
}

func parseFail(t *testing.T, src, wantSub string) {
	t.Helper()
	_, err := Parse(src, "test.py")
	if err == nil {
		t.Fatalf("Parse(%q) succeeded, want error containing %q", src, wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not contain %q", err, wantSub)
	}
}

func TestParseFunction(t *testing.T) {
	m := parse(t, `
def add(a, b=2, c: float = 0.5) -> float:
    return a + b + c
`)
	if len(m.Body) != 1 {
		t.Fatalf("body len %d", len(m.Body))
	}
	fd, ok := m.Body[0].(*FuncDef)
	if !ok {
		t.Fatalf("not a FuncDef: %T", m.Body[0])
	}
	if fd.Name != "add" || len(fd.Params) != 3 {
		t.Fatalf("fd = %+v", fd)
	}
	if fd.Params[1].Default == nil || fd.Params[2].Annotation == nil {
		t.Fatal("defaults/annotations missing")
	}
	if fd.Returns == nil {
		t.Fatal("return annotation missing")
	}
}

func TestParseDecorators(t *testing.T) {
	m := parse(t, `
@omp
def f():
    pass

@omp(compile=True)
def g():
    pass
`)
	f := m.Body[0].(*FuncDef)
	if len(f.Decorators) != 1 {
		t.Fatalf("f decorators: %d", len(f.Decorators))
	}
	if _, ok := f.Decorators[0].(*Name); !ok {
		t.Fatalf("f decorator type %T", f.Decorators[0])
	}
	g := m.Body[1].(*FuncDef)
	call, ok := g.Decorators[0].(*Call)
	if !ok {
		t.Fatalf("g decorator type %T", g.Decorators[0])
	}
	if len(call.Keywords) != 1 || call.Keywords[0].Name != "compile" {
		t.Fatalf("g decorator keywords %+v", call.Keywords)
	}
}

func TestParseIfElifElse(t *testing.T) {
	m := parse(t, `
if a:
    x = 1
elif b:
    x = 2
else:
    x = 3
`)
	node := m.Body[0].(*If)
	if len(node.Else) != 1 {
		t.Fatalf("else len %d", len(node.Else))
	}
	elif, ok := node.Else[0].(*If)
	if !ok {
		t.Fatalf("elif type %T", node.Else[0])
	}
	if len(elif.Else) != 1 {
		t.Fatalf("final else len %d", len(elif.Else))
	}
}

func TestParseLoops(t *testing.T) {
	m := parse(t, `
for i in range(10):
    if i > 5:
        break
    continue
while x < 3:
    x += 1
`)
	f := m.Body[0].(*For)
	if name, ok := f.Target.(*Name); !ok || name.ID != "i" {
		t.Fatalf("for target %+v", f.Target)
	}
	w := m.Body[1].(*While)
	if _, ok := w.Body[0].(*AugAssign); !ok {
		t.Fatalf("while body %T", w.Body[0])
	}
}

func TestParseForTupleTarget(t *testing.T) {
	m := parse(t, "for k, v in items:\n    pass\n")
	f := m.Body[0].(*For)
	tp, ok := f.Target.(*TupleLit)
	if !ok || len(tp.Elts) != 2 {
		t.Fatalf("target %+v", f.Target)
	}
}

func TestParseWithDirective(t *testing.T) {
	m := parse(t, `
with omp("parallel for reduction(+:pi_value)"):
    for i in range(n):
        pi_value += 1.0
`)
	w := m.Body[0].(*With)
	call, ok := w.Items[0].Context.(*Call)
	if !ok {
		t.Fatalf("with context %T", w.Items[0].Context)
	}
	arg, ok := call.Args[0].(*StrLit)
	if !ok || !strings.Contains(arg.V, "reduction") {
		t.Fatalf("directive arg %+v", call.Args[0])
	}
}

func TestParseWithAs(t *testing.T) {
	m := parse(t, "with open(f) as fh, lock:\n    pass\n")
	w := m.Body[0].(*With)
	if len(w.Items) != 2 {
		t.Fatalf("items %d", len(w.Items))
	}
	if w.Items[0].Vars == nil || w.Items[1].Vars != nil {
		t.Fatalf("as vars wrong: %+v", w.Items)
	}
}

func TestParseAssignments(t *testing.T) {
	m := parse(t, `
x = 1
a, b = 1, 2
a = b = 3
m[0] = 5
p.q = 6
x: int = 7
y: float
`)
	if _, ok := m.Body[0].(*Assign); !ok {
		t.Fatal("simple assign")
	}
	multi := m.Body[1].(*Assign)
	if _, ok := multi.Targets[0].(*TupleLit); !ok {
		t.Fatal("tuple target")
	}
	chained := m.Body[2].(*Assign)
	if len(chained.Targets) != 2 {
		t.Fatalf("chained targets %d", len(chained.Targets))
	}
	if _, ok := m.Body[3].(*Assign).Targets[0].(*Index); !ok {
		t.Fatal("index target")
	}
	if _, ok := m.Body[4].(*Assign).Targets[0].(*Attribute); !ok {
		t.Fatal("attribute target")
	}
	ann := m.Body[5].(*AnnAssign)
	if ann.Value == nil {
		t.Fatal("annotated assign value")
	}
	bare := m.Body[6].(*AnnAssign)
	if bare.Value != nil {
		t.Fatal("bare annotation should have no value")
	}
}

func TestParseAssignToLiteralFails(t *testing.T) {
	parseFail(t, "1 = x\n", "cannot assign")
	parseFail(t, "f() = x\n", "cannot assign")
	parseFail(t, "a + b = x\n", "cannot assign")
}

func TestParsePrecedence(t *testing.T) {
	m := parse(t, "r = 1 + 2 * 3 ** 2 - -4\n")
	// 1 + (2 * (3 ** 2)) - (-4)
	v := m.Body[0].(*Assign).Value
	top, ok := v.(*BinOp)
	if !ok || top.Op != "-" {
		t.Fatalf("top %+v", v)
	}
	left := top.L.(*BinOp)
	if left.Op != "+" {
		t.Fatalf("left op %s", left.Op)
	}
	mul := left.R.(*BinOp)
	if mul.Op != "*" {
		t.Fatalf("mul op %s", mul.Op)
	}
	pow := mul.R.(*BinOp)
	if pow.Op != "**" {
		t.Fatalf("pow op %s", pow.Op)
	}
	if neg, ok := top.R.(*UnaryOp); !ok || neg.Op != "-" {
		t.Fatalf("unary %+v", top.R)
	}
}

func TestParseChainedComparison(t *testing.T) {
	m := parse(t, "ok = 0 <= i < n\n")
	cmp := m.Body[0].(*Assign).Value.(*Compare)
	if len(cmp.Ops) != 2 || cmp.Ops[0] != "<=" || cmp.Ops[1] != "<" {
		t.Fatalf("ops %v", cmp.Ops)
	}
}

func TestParseBoolOpsAndNot(t *testing.T) {
	m := parse(t, "r = a and not b or c in d and e not in f\n")
	or, ok := m.Body[0].(*Assign).Value.(*BoolOp)
	if !ok || or.Op != "or" {
		t.Fatalf("top %+v", m.Body[0].(*Assign).Value)
	}
	if len(or.Values) != 2 {
		t.Fatalf("or arity %d", len(or.Values))
	}
}

func TestParseCollections(t *testing.T) {
	m := parse(t, `
l = [1, 2, 3]
d = {"a": 1, "b": 2}
t = (1, 2)
s = {1, 2}
e = {}
single = (5)
tup1 = 5,
`)
	if l := m.Body[0].(*Assign).Value.(*ListLit); len(l.Elts) != 3 {
		t.Fatal("list")
	}
	if d := m.Body[1].(*Assign).Value.(*DictLit); len(d.Keys) != 2 {
		t.Fatal("dict")
	}
	if tp := m.Body[2].(*Assign).Value.(*TupleLit); len(tp.Elts) != 2 {
		t.Fatal("tuple")
	}
	if st := m.Body[3].(*Assign).Value.(*SetLit); len(st.Elts) != 2 {
		t.Fatal("set")
	}
	if d := m.Body[4].(*Assign).Value.(*DictLit); len(d.Keys) != 0 {
		t.Fatal("empty dict")
	}
	if _, ok := m.Body[5].(*Assign).Value.(*IntLit); !ok {
		t.Fatal("(5) should be an int, not a tuple")
	}
	if tp := m.Body[6].(*Assign).Value.(*TupleLit); len(tp.Elts) != 1 {
		t.Fatal("one-tuple")
	}
}

func TestParseSubscripts(t *testing.T) {
	m := parse(t, `
a = m[i]
b = m[i][j]
c = m[1:5]
d = m[:n]
e = m[::2]
f = m[a:b:c]
`)
	if _, ok := m.Body[0].(*Assign).Value.(*Index); !ok {
		t.Fatal("index")
	}
	inner := m.Body[1].(*Assign).Value.(*Index)
	if _, ok := inner.X.(*Index); !ok {
		t.Fatal("nested index")
	}
	sl := m.Body[2].(*Assign).Value.(*SliceExpr)
	if sl.Lo == nil || sl.Hi == nil || sl.Step != nil {
		t.Fatal("slice lo:hi")
	}
	sl = m.Body[3].(*Assign).Value.(*SliceExpr)
	if sl.Lo != nil || sl.Hi == nil {
		t.Fatal("slice :n")
	}
	sl = m.Body[4].(*Assign).Value.(*SliceExpr)
	if sl.Lo != nil || sl.Hi != nil || sl.Step == nil {
		t.Fatal("slice ::2")
	}
	sl = m.Body[5].(*Assign).Value.(*SliceExpr)
	if sl.Lo == nil || sl.Hi == nil || sl.Step == nil {
		t.Fatal("full slice")
	}
}

func TestParseCallsAndAttributes(t *testing.T) {
	m := parse(t, "r = obj.method(1, x, key=2).field[3]\n")
	idx := m.Body[0].(*Assign).Value.(*Index)
	attr := idx.X.(*Attribute)
	if attr.Name != "field" {
		t.Fatalf("attr %s", attr.Name)
	}
	call := attr.X.(*Call)
	if len(call.Args) != 2 || len(call.Keywords) != 1 {
		t.Fatalf("call %+v", call)
	}
}

func TestParseTryExceptFinally(t *testing.T) {
	m := parse(t, `
try:
    risky()
except ValueError as e:
    handle(e)
except:
    fallback()
finally:
    cleanup()
`)
	tr := m.Body[0].(*Try)
	if len(tr.Handlers) != 2 {
		t.Fatalf("handlers %d", len(tr.Handlers))
	}
	if tr.Handlers[0].Name != "e" || tr.Handlers[1].Type != nil {
		t.Fatalf("handlers %+v", tr.Handlers)
	}
	if len(tr.Final) != 1 {
		t.Fatal("finally missing")
	}
	parseFail(t, "try:\n    pass\n", "except or finally")
}

func TestParseImports(t *testing.T) {
	m := parse(t, `
import math, time as t
from omp4py import *
from math import sqrt, floor as fl
`)
	imp := m.Body[0].(*Import)
	if imp.Names[1].AsName != "t" {
		t.Fatalf("import as: %+v", imp.Names)
	}
	star := m.Body[1].(*FromImport)
	if !star.Star || star.Module != "omp4py" {
		t.Fatalf("star import %+v", star)
	}
	from := m.Body[2].(*FromImport)
	if len(from.Names) != 2 || from.Names[1].AsName != "fl" {
		t.Fatalf("from import %+v", from.Names)
	}
}

func TestParseGlobalNonlocal(t *testing.T) {
	m := parse(t, "def f():\n    global a, b\n    nonlocal c\n")
	fd := m.Body[0].(*FuncDef)
	g := fd.Body[0].(*Global)
	if !reflect.DeepEqual(g.Names, []string{"a", "b"}) {
		t.Fatalf("global %v", g.Names)
	}
	n := fd.Body[1].(*Nonlocal)
	if !reflect.DeepEqual(n.Names, []string{"c"}) {
		t.Fatalf("nonlocal %v", n.Names)
	}
}

func TestParseLambdaAndIfExp(t *testing.T) {
	m := parse(t, "f = lambda x, y=2: x + y\nr = a if c else b\n")
	lam := m.Body[0].(*Assign).Value.(*Lambda)
	if len(lam.Params) != 2 || lam.Params[1].Default == nil {
		t.Fatalf("lambda %+v", lam)
	}
	ife := m.Body[1].(*Assign).Value.(*IfExp)
	if _, ok := ife.Cond.(*Name); !ok {
		t.Fatalf("ifexp %+v", ife)
	}
}

func TestParseSemicolons(t *testing.T) {
	m := parse(t, "a = 1; b = 2; c = 3\n")
	if len(m.Body) != 3 {
		t.Fatalf("body %d", len(m.Body))
	}
}

func TestParseRaiseAssertDel(t *testing.T) {
	m := parse(t, `
raise ValueError("bad")
raise
assert x > 0, "must be positive"
assert ok
del d["k"], x
`)
	r := m.Body[0].(*Raise)
	if r.Exc == nil {
		t.Fatal("raise expr missing")
	}
	if m.Body[1].(*Raise).Exc != nil {
		t.Fatal("bare raise")
	}
	a := m.Body[2].(*Assert)
	if a.Msg == nil {
		t.Fatal("assert msg")
	}
	if m.Body[3].(*Assert).Msg != nil {
		t.Fatal("assert without msg")
	}
	d := m.Body[4].(*Del)
	if len(d.Targets) != 2 {
		t.Fatalf("del targets %d", len(d.Targets))
	}
}

func TestParseInlineSuite(t *testing.T) {
	m := parse(t, "if a: x = 1; y = 2\n")
	node := m.Body[0].(*If)
	if len(node.Body) != 2 {
		t.Fatalf("inline suite %d stmts", len(node.Body))
	}
}

func TestParseErrors(t *testing.T) {
	parseFail(t, "def f(:\n    pass\n", "expected")
	parseFail(t, "if a\n    pass\n", "expected :")
	parseFail(t, "for i range(3):\n    pass\n", "expected in")
	parseFail(t, "f(a, key=1, b)\n", "positional argument after keyword")
	parseFail(t, "def f():\n", "INDENT")
	parseFail(t, "@dec\nx = 1\n", "must be followed by a function")
}

func TestParseExprString(t *testing.T) {
	e, err := ParseExprString("n > 30")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*Compare); !ok {
		t.Fatalf("type %T", e)
	}
	if _, err := ParseExprString("n >"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := ParseExprString("a b"); err == nil {
		t.Fatal("expected trailing token error")
	}
}

// TestUnparseRoundTrip: parse → unparse → parse must be a structural
// fixpoint (ignoring positions).
func TestUnparseRoundTrip(t *testing.T) {
	srcs := []string{
		"x = 1 + 2 * 3 ** 2 - -4\n",
		"r = (a + b) * c\n",
		"ok = 0 <= i < n and not done or x in xs\n",
		"def f(a, b=2, c: float = 0.5) -> float:\n    return a + b + c\n",
		"@omp\ndef g():\n    with omp(\"parallel\"):\n        pass\n",
		"for i in range(0, n, 2):\n    total += v[i]\n",
		"while x < 3:\n    x += 1\nelse_done = 1\n",
		"if a:\n    x = 1\nelif b:\n    x = 2\nelse:\n    x = 3\n",
		"l = [1, 2.5, \"s\", None, True]\nd = {\"k\": [1], 2: (3, 4)}\n",
		"try:\n    f()\nexcept ValueError as e:\n    g(e)\nfinally:\n    h()\n",
		"a, b = b, a\nm[i][j] = k\np.q.r = 2\n",
		"s = x[1:5:2] + y[::3] + z[:n]\n",
		"f = lambda x, y=1: x * y\nr = a if c else b\n",
		"import math\nfrom omp4py import *\nglobal_x = math.sqrt(2)\n",
		"assert x > 0, \"positive\"\nraise ValueError(\"no\")\n",
		"def outer():\n    x = 0\n    def inner():\n        nonlocal x\n        x += 1\n    inner()\n    return x\n",
		"t1 = 5,\nneg = -x ** 2\nquot = a // b % c\n",
		"bits = a & b | c ^ d << 2 >> 1\n",
	}
	for _, src := range srcs {
		m1 := parse(t, src)
		out1 := Unparse(m1)
		m2, err := Parse(out1, "roundtrip.py")
		if err != nil {
			t.Fatalf("re-parse failed: %v\nunparsed:\n%s", err, out1)
		}
		out2 := Unparse(m2)
		if out1 != out2 {
			t.Fatalf("round trip not a fixpoint.\nsource:\n%s\nfirst:\n%s\nsecond:\n%s", src, out1, out2)
		}
	}
}

func TestParseBenchmarkShapedProgram(t *testing.T) {
	// A realistic OMP4Py program: the paper's Fig. 1.
	src := `
from omp4py import *

@omp
def pi(n):
    w = 1.0 / n
    pi_value = 0.0
    with omp("parallel for reduction(+:pi_value)"):
        for i in range(n):
            local = (i + 0.5) * w
            pi_value += 4.0 / (1.0 + local * local)
    return pi_value * w

print(pi(10000000))
`
	m := parse(t, src)
	if len(m.Body) != 3 {
		t.Fatalf("top-level stmts: %d", len(m.Body))
	}
	fd := m.Body[1].(*FuncDef)
	if fd.Name != "pi" || len(fd.Decorators) != 1 {
		t.Fatalf("pi def: %+v", fd)
	}
	// Fig. 4: tasks.
	src2 := `
@omp
def fibonacci(n):
    if n <= 1:
        return n
    fib1 = 0
    fib2 = 0
    with omp("task"):
        fib1 = fibonacci(n - 1)
    with omp("task"):
        fib2 = fibonacci(n - 2)
    omp("taskwait")
    return fib1 + fib2
`
	parse(t, src2)
}
