package minipy

// Node is any AST node.
type Node interface {
	NodePos() Position
}

type base struct {
	P Position
}

// NodePos returns the node's source position.
func (b base) NodePos() Position { return b.P }

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// Module is a whole source file.
type Module struct {
	base
	Body []Stmt
}

// Param is one function parameter with optional annotation and
// default value.
type Param struct {
	Name       string
	Annotation Expr
	Default    Expr
}

// FuncDef is a def statement, optionally decorated.
type FuncDef struct {
	base
	Name       string
	Params     []Param
	Body       []Stmt
	Decorators []Expr
	Returns    Expr // optional "-> type" annotation
}

// Return is a return statement.
type Return struct {
	base
	Value Expr // nil for bare return
}

// If is an if/elif/else chain (elif is a nested If in Else).
type If struct {
	base
	Cond Expr
	Body []Stmt
	Else []Stmt
}

// While is a while loop.
type While struct {
	base
	Cond Expr
	Body []Stmt
}

// For is a for-in loop.
type For struct {
	base
	Target Expr // Name or TupleLit of Names
	Iter   Expr
	Body   []Stmt
}

// Assign is "target = value" (possibly chained and with tuple
// targets).
type Assign struct {
	base
	Targets []Expr
	Value   Expr
}

// AugAssign is "target op= value".
type AugAssign struct {
	base
	Target Expr
	Op     string // "+", "-", ...
	Value  Expr
}

// AnnAssign is an annotated assignment "x: float = 0.0"; Value may be
// nil for a bare declaration.
type AnnAssign struct {
	base
	Target     Expr
	Annotation Expr
	Value      Expr
}

// ExprStmt is an expression used as a statement.
type ExprStmt struct {
	base
	X Expr
}

// WithItem is one "ctx [as name]" item of a with statement.
type WithItem struct {
	Context Expr
	Vars    Expr // optional "as" target
}

// With is a with statement; OpenMP directives appear as
// `with omp("..."):` blocks.
type With struct {
	base
	Items []WithItem
	Body  []Stmt
}

// Global is a global declaration.
type Global struct {
	base
	Names []string
}

// Nonlocal is a nonlocal declaration.
type Nonlocal struct {
	base
	Names []string
}

// ImportAlias is one "name [as asname]" of an import statement.
type ImportAlias struct {
	Name   string
	AsName string
}

// Import is "import a, b as c".
type Import struct {
	base
	Names []ImportAlias
}

// FromImport is "from mod import a, b" or "from mod import *".
type FromImport struct {
	base
	Module string
	Names  []ImportAlias // empty means *
	Star   bool
}

// Break is a break statement.
type Break struct{ base }

// Continue is a continue statement.
type Continue struct{ base }

// Pass is a pass statement.
type Pass struct{ base }

// ExceptHandler is one except clause.
type ExceptHandler struct {
	Type Expr   // nil for bare except
	Name string // optional "as name"
	Body []Stmt
}

// Try is try/except/finally.
type Try struct {
	base
	Body     []Stmt
	Handlers []ExceptHandler
	Final    []Stmt
}

// Raise re-raises or raises an exception expression.
type Raise struct {
	base
	Exc Expr // nil for bare raise
}

// Assert is an assert statement.
type Assert struct {
	base
	Test Expr
	Msg  Expr
}

// Del removes names or items.
type Del struct {
	base
	Targets []Expr
}

func (*FuncDef) stmtNode()    {}
func (*Return) stmtNode()     {}
func (*If) stmtNode()         {}
func (*While) stmtNode()      {}
func (*For) stmtNode()        {}
func (*Assign) stmtNode()     {}
func (*AugAssign) stmtNode()  {}
func (*AnnAssign) stmtNode()  {}
func (*ExprStmt) stmtNode()   {}
func (*With) stmtNode()       {}
func (*Global) stmtNode()     {}
func (*Nonlocal) stmtNode()   {}
func (*Import) stmtNode()     {}
func (*FromImport) stmtNode() {}
func (*Break) stmtNode()      {}
func (*Continue) stmtNode()   {}
func (*Pass) stmtNode()       {}
func (*Try) stmtNode()        {}
func (*Raise) stmtNode()      {}
func (*Assert) stmtNode()     {}
func (*Del) stmtNode()        {}

// Name is an identifier reference.
type Name struct {
	base
	ID string
}

// IntLit is an integer literal.
type IntLit struct {
	base
	V int64
}

// FloatLit is a float literal.
type FloatLit struct {
	base
	V float64
}

// StrLit is a string literal.
type StrLit struct {
	base
	V string
}

// BoolLit is True or False.
type BoolLit struct {
	base
	V bool
}

// NoneLit is None.
type NoneLit struct{ base }

// BinOp is a binary arithmetic/bitwise operation.
type BinOp struct {
	base
	Op   string // + - * / // % ** & | ^ << >>
	L, R Expr
}

// BoolOp is "and"/"or" over two or more operands (short-circuit).
type BoolOp struct {
	base
	Op     string // "and" | "or"
	Values []Expr
}

// UnaryOp is -x, +x, ~x, or not x.
type UnaryOp struct {
	base
	Op string
	X  Expr
}

// Compare is a chained comparison a < b <= c.
type Compare struct {
	base
	L      Expr
	Ops    []string // == != < <= > >= in "not in" is "is not"
	Rights []Expr
}

// Keyword is one keyword argument of a call.
type Keyword struct {
	Name  string
	Value Expr
}

// Call is a function or method call.
type Call struct {
	base
	Fn       Expr
	Args     []Expr
	Keywords []Keyword
}

// Attribute is x.name.
type Attribute struct {
	base
	X    Expr
	Name string
}

// Index is x[i].
type Index struct {
	base
	X Expr
	I Expr
}

// SliceExpr is x[lo:hi:step] with optional parts.
type SliceExpr struct {
	base
	X            Expr
	Lo, Hi, Step Expr
}

// ListLit is a list literal.
type ListLit struct {
	base
	Elts []Expr
}

// TupleLit is a tuple literal (with or without parentheses).
type TupleLit struct {
	base
	Elts []Expr
}

// DictLit is a dict literal.
type DictLit struct {
	base
	Keys, Vals []Expr
}

// SetLit is a set literal.
type SetLit struct {
	base
	Elts []Expr
}

// IfExp is the conditional expression "a if cond else b".
type IfExp struct {
	base
	Cond, Then, Else Expr
}

// Lambda is a lambda expression.
type Lambda struct {
	base
	Params []Param
	Body   Expr
}

func (*Name) exprNode()      {}
func (*IntLit) exprNode()    {}
func (*FloatLit) exprNode()  {}
func (*StrLit) exprNode()    {}
func (*BoolLit) exprNode()   {}
func (*NoneLit) exprNode()   {}
func (*BinOp) exprNode()     {}
func (*BoolOp) exprNode()    {}
func (*UnaryOp) exprNode()   {}
func (*Compare) exprNode()   {}
func (*Call) exprNode()      {}
func (*Attribute) exprNode() {}
func (*Index) exprNode()     {}
func (*SliceExpr) exprNode() {}
func (*ListLit) exprNode()   {}
func (*TupleLit) exprNode()  {}
func (*DictLit) exprNode()   {}
func (*SetLit) exprNode()    {}
func (*IfExp) exprNode()     {}
func (*Lambda) exprNode()    {}
