package minipy

import (
	"fmt"
	"strconv"
)

// Parse parses MiniPy source into a Module. file is used in error
// messages only.
func Parse(src, file string) (*Module, error) {
	toks, err := Lex(src)
	if err != nil {
		if e, ok := err.(*Error); ok {
			e.File = file
		}
		return nil, err
	}
	p := &parser{toks: toks, file: file}
	mod, err := p.parseModule()
	if err != nil {
		return nil, err
	}
	return mod, nil
}

// ParseExprString parses a single expression (used for directive
// clause expressions like if(n > 30)).
func ParseExprString(src string) (Expr, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseTest()
	if err != nil {
		return nil, err
	}
	// Allow trailing NEWLINE/EOF only.
	for p.cur().Kind == NEWLINE {
		p.next()
	}
	if p.cur().Kind != EOF {
		return nil, p.errf("unexpected %s after expression", p.cur())
	}
	return e, nil
}

type parser struct {
	toks []Token
	i    int
	file string
}

func (p *parser) cur() Token  { return p.toks[p.i] }
func (p *parser) peek() Token { return p.toks[p.i+1] }
func (p *parser) next() Token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) at(kind TokKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) accept(kind TokKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kind TokKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = kind.String()
	}
	return Token{}, p.errf("expected %s, found %s", want, p.cur())
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...), File: p.file}
}

func (p *parser) parseModule() (*Module, error) {
	mod := &Module{}
	for {
		switch p.cur().Kind {
		case EOF:
			return mod, nil
		case NEWLINE:
			p.next()
		default:
			stmts, err := p.parseStatement()
			if err != nil {
				return nil, err
			}
			mod.Body = append(mod.Body, stmts...)
		}
	}
}

// parseStatement parses one logical statement, which may expand to
// multiple small statements separated by semicolons.
func (p *parser) parseStatement() ([]Stmt, error) {
	t := p.cur()
	if t.Kind == KEYWORD {
		switch t.Text {
		case "def":
			s, err := p.parseFuncDef(nil)
			if err != nil {
				return nil, err
			}
			return []Stmt{s}, nil
		case "if":
			s, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			return []Stmt{s}, nil
		case "while":
			s, err := p.parseWhile()
			if err != nil {
				return nil, err
			}
			return []Stmt{s}, nil
		case "for":
			s, err := p.parseFor()
			if err != nil {
				return nil, err
			}
			return []Stmt{s}, nil
		case "with":
			s, err := p.parseWith()
			if err != nil {
				return nil, err
			}
			return []Stmt{s}, nil
		case "try":
			s, err := p.parseTry()
			if err != nil {
				return nil, err
			}
			return []Stmt{s}, nil
		}
	}
	if t.Kind == OP && t.Text == "@" {
		return p.parseDecorated()
	}
	return p.parseSimpleLine()
}

func (p *parser) parseDecorated() ([]Stmt, error) {
	var decorators []Expr
	for p.accept(OP, "@") {
		d, err := p.parseTest()
		if err != nil {
			return nil, err
		}
		decorators = append(decorators, d)
		if _, err := p.expect(NEWLINE, ""); err != nil {
			return nil, err
		}
		for p.accept(NEWLINE, "") {
		}
	}
	if !p.at(KEYWORD, "def") {
		return nil, p.errf("decorators must be followed by a function definition")
	}
	s, err := p.parseFuncDef(decorators)
	if err != nil {
		return nil, err
	}
	return []Stmt{s}, nil
}

func (p *parser) parseFuncDef(decorators []Expr) (Stmt, error) {
	pos := p.cur().Pos
	p.next() // def
	nameTok, err := p.expect(NAME, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(OP, "("); err != nil {
		return nil, err
	}
	params, err := p.parseParams(")")
	if err != nil {
		return nil, err
	}
	fd := &FuncDef{base: base{pos}, Name: nameTok.Text, Params: params, Decorators: decorators}
	if p.accept(OP, "->") {
		ret, err := p.parseTest()
		if err != nil {
			return nil, err
		}
		fd.Returns = ret
	}
	body, err := p.parseSuite()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

func (p *parser) parseParams(closer string) ([]Param, error) {
	var params []Param
	for !p.at(OP, closer) {
		nameTok, err := p.expect(NAME, "")
		if err != nil {
			return nil, err
		}
		param := Param{Name: nameTok.Text}
		if p.accept(OP, ":") {
			ann, err := p.parseTest()
			if err != nil {
				return nil, err
			}
			param.Annotation = ann
		}
		if p.accept(OP, "=") {
			def, err := p.parseTest()
			if err != nil {
				return nil, err
			}
			param.Default = def
		}
		params = append(params, param)
		if !p.accept(OP, ",") {
			break
		}
	}
	if _, err := p.expect(OP, closer); err != nil {
		return nil, err
	}
	return params, nil
}

func (p *parser) parseIf() (Stmt, error) {
	pos := p.next().Pos // if / elif
	cond, err := p.parseTest()
	if err != nil {
		return nil, err
	}
	body, err := p.parseSuite()
	if err != nil {
		return nil, err
	}
	node := &If{base: base{pos}, Cond: cond, Body: body}
	switch {
	case p.at(KEYWORD, "elif"):
		elifStmt, err := p.parseIf()
		if err != nil {
			return nil, err
		}
		node.Else = []Stmt{elifStmt}
	case p.at(KEYWORD, "else"):
		p.next()
		els, err := p.parseSuite()
		if err != nil {
			return nil, err
		}
		node.Else = els
	}
	return node, nil
}

func (p *parser) parseWhile() (Stmt, error) {
	pos := p.next().Pos
	cond, err := p.parseTest()
	if err != nil {
		return nil, err
	}
	body, err := p.parseSuite()
	if err != nil {
		return nil, err
	}
	return &While{base: base{pos}, Cond: cond, Body: body}, nil
}

func (p *parser) parseFor() (Stmt, error) {
	pos := p.next().Pos
	target, err := p.parseTargetList()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KEYWORD, "in"); err != nil {
		return nil, err
	}
	iter, err := p.parseTestList()
	if err != nil {
		return nil, err
	}
	body, err := p.parseSuite()
	if err != nil {
		return nil, err
	}
	return &For{base: base{pos}, Target: target, Iter: iter, Body: body}, nil
}

// parseTargetList parses "a" or "a, b" assignment/loop targets.
func (p *parser) parseTargetList() (Expr, error) {
	first, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	if !p.at(OP, ",") {
		return first, nil
	}
	elts := []Expr{first}
	for p.accept(OP, ",") {
		if p.at(KEYWORD, "in") || p.at(OP, "=") {
			break
		}
		e, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		elts = append(elts, e)
	}
	return &TupleLit{base: base{first.NodePos()}, Elts: elts}, nil
}

func (p *parser) parseWith() (Stmt, error) {
	pos := p.next().Pos
	var items []WithItem
	for {
		ctxExpr, err := p.parseTest()
		if err != nil {
			return nil, err
		}
		item := WithItem{Context: ctxExpr}
		if p.accept(KEYWORD, "as") {
			v, err := p.parsePostfix()
			if err != nil {
				return nil, err
			}
			item.Vars = v
		}
		items = append(items, item)
		if !p.accept(OP, ",") {
			break
		}
	}
	body, err := p.parseSuite()
	if err != nil {
		return nil, err
	}
	return &With{base: base{pos}, Items: items, Body: body}, nil
}

func (p *parser) parseTry() (Stmt, error) {
	pos := p.next().Pos
	body, err := p.parseSuite()
	if err != nil {
		return nil, err
	}
	node := &Try{base: base{pos}, Body: body}
	for p.at(KEYWORD, "except") {
		p.next()
		var h ExceptHandler
		if !p.at(OP, ":") {
			typ, err := p.parseTest()
			if err != nil {
				return nil, err
			}
			h.Type = typ
			if p.accept(KEYWORD, "as") {
				nameTok, err := p.expect(NAME, "")
				if err != nil {
					return nil, err
				}
				h.Name = nameTok.Text
			}
		}
		hbody, err := p.parseSuite()
		if err != nil {
			return nil, err
		}
		h.Body = hbody
		node.Handlers = append(node.Handlers, h)
	}
	if p.accept(KEYWORD, "finally") {
		fbody, err := p.parseSuite()
		if err != nil {
			return nil, err
		}
		node.Final = fbody
	}
	if len(node.Handlers) == 0 && node.Final == nil {
		return nil, p.errf("try statement needs except or finally")
	}
	return node, nil
}

// parseSuite parses ":" followed by an inline simple statement or an
// indented block.
func (p *parser) parseSuite() ([]Stmt, error) {
	if _, err := p.expect(OP, ":"); err != nil {
		return nil, err
	}
	if !p.at(NEWLINE, "") {
		return p.parseSimpleLine()
	}
	p.next() // NEWLINE
	if _, err := p.expect(INDENT, ""); err != nil {
		return nil, err
	}
	var body []Stmt
	for !p.at(DEDENT, "") {
		if p.accept(NEWLINE, "") {
			continue
		}
		stmts, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		body = append(body, stmts...)
	}
	p.next() // DEDENT
	if len(body) == 0 {
		return nil, p.errf("empty block")
	}
	return body, nil
}

// parseSimpleLine parses small statements separated by ';' up to the
// newline.
func (p *parser) parseSimpleLine() ([]Stmt, error) {
	var out []Stmt
	for {
		s, err := p.parseSmallStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if !p.accept(OP, ";") {
			break
		}
		if p.at(NEWLINE, "") || p.at(EOF, "") {
			break
		}
	}
	if !p.accept(NEWLINE, "") && !p.at(EOF, "") && !p.at(DEDENT, "") {
		return nil, p.errf("expected newline, found %s", p.cur())
	}
	return out, nil
}

func (p *parser) parseSmallStmt() (Stmt, error) {
	t := p.cur()
	if t.Kind == KEYWORD {
		switch t.Text {
		case "return":
			p.next()
			node := &Return{base: base{t.Pos}}
			if !p.at(NEWLINE, "") && !p.at(OP, ";") && !p.at(EOF, "") {
				v, err := p.parseTestList()
				if err != nil {
					return nil, err
				}
				node.Value = v
			}
			return node, nil
		case "pass":
			p.next()
			return &Pass{base{t.Pos}}, nil
		case "break":
			p.next()
			return &Break{base{t.Pos}}, nil
		case "continue":
			p.next()
			return &Continue{base{t.Pos}}, nil
		case "global", "nonlocal":
			p.next()
			var names []string
			for {
				nameTok, err := p.expect(NAME, "")
				if err != nil {
					return nil, err
				}
				names = append(names, nameTok.Text)
				if !p.accept(OP, ",") {
					break
				}
			}
			if t.Text == "global" {
				return &Global{base{t.Pos}, names}, nil
			}
			return &Nonlocal{base{t.Pos}, names}, nil
		case "import":
			p.next()
			node := &Import{base: base{t.Pos}}
			for {
				name, err := p.parseDottedName()
				if err != nil {
					return nil, err
				}
				alias := ImportAlias{Name: name}
				if p.accept(KEYWORD, "as") {
					asTok, err := p.expect(NAME, "")
					if err != nil {
						return nil, err
					}
					alias.AsName = asTok.Text
				}
				node.Names = append(node.Names, alias)
				if !p.accept(OP, ",") {
					break
				}
			}
			return node, nil
		case "from":
			p.next()
			mod, err := p.parseDottedName()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(KEYWORD, "import"); err != nil {
				return nil, err
			}
			node := &FromImport{base: base{t.Pos}, Module: mod}
			if p.accept(OP, "*") {
				node.Star = true
				return node, nil
			}
			for {
				nameTok, err := p.expect(NAME, "")
				if err != nil {
					return nil, err
				}
				alias := ImportAlias{Name: nameTok.Text}
				if p.accept(KEYWORD, "as") {
					asTok, err := p.expect(NAME, "")
					if err != nil {
						return nil, err
					}
					alias.AsName = asTok.Text
				}
				node.Names = append(node.Names, alias)
				if !p.accept(OP, ",") {
					break
				}
			}
			return node, nil
		case "raise":
			p.next()
			node := &Raise{base: base{t.Pos}}
			if !p.at(NEWLINE, "") && !p.at(OP, ";") && !p.at(EOF, "") {
				e, err := p.parseTest()
				if err != nil {
					return nil, err
				}
				node.Exc = e
			}
			return node, nil
		case "assert":
			p.next()
			test, err := p.parseTest()
			if err != nil {
				return nil, err
			}
			node := &Assert{base: base{t.Pos}, Test: test}
			if p.accept(OP, ",") {
				msg, err := p.parseTest()
				if err != nil {
					return nil, err
				}
				node.Msg = msg
			}
			return node, nil
		case "del":
			p.next()
			var targets []Expr
			for {
				e, err := p.parsePostfix()
				if err != nil {
					return nil, err
				}
				targets = append(targets, e)
				if !p.accept(OP, ",") {
					break
				}
			}
			return &Del{base{t.Pos}, targets}, nil
		}
	}
	return p.parseExprStmt()
}

func (p *parser) parseDottedName() (string, error) {
	nameTok, err := p.expect(NAME, "")
	if err != nil {
		return "", err
	}
	name := nameTok.Text
	for p.accept(OP, ".") {
		part, err := p.expect(NAME, "")
		if err != nil {
			return "", err
		}
		name += "." + part.Text
	}
	return name, nil
}

var augOps = map[string]string{
	"+=": "+", "-=": "-", "*=": "*", "/=": "/", "//=": "//",
	"%=": "%", "**=": "**", "&=": "&", "|=": "|", "^=": "^",
	"<<=": "<<", ">>=": ">>",
}

func (p *parser) parseExprStmt() (Stmt, error) {
	pos := p.cur().Pos
	first, err := p.parseTestList()
	if err != nil {
		return nil, err
	}
	// Annotated assignment.
	if p.at(OP, ":") {
		if _, ok := first.(*Name); ok {
			p.next()
			ann, err := p.parseTest()
			if err != nil {
				return nil, err
			}
			node := &AnnAssign{base: base{pos}, Target: first, Annotation: ann}
			if p.accept(OP, "=") {
				v, err := p.parseTestList()
				if err != nil {
					return nil, err
				}
				node.Value = v
			}
			return node, nil
		}
	}
	// Augmented assignment.
	if p.cur().Kind == OP {
		if op, ok := augOps[p.cur().Text]; ok {
			if err := checkAssignable(first, p, pos); err != nil {
				return nil, err
			}
			p.next()
			v, err := p.parseTestList()
			if err != nil {
				return nil, err
			}
			return &AugAssign{base: base{pos}, Target: first, Op: op, Value: v}, nil
		}
	}
	// Plain (possibly chained) assignment.
	if p.at(OP, "=") {
		targets := []Expr{first}
		var value Expr
		for p.accept(OP, "=") {
			v, err := p.parseTestList()
			if err != nil {
				return nil, err
			}
			if p.at(OP, "=") {
				targets = append(targets, v)
			} else {
				value = v
			}
		}
		for _, tgt := range targets {
			if err := checkAssignable(tgt, p, pos); err != nil {
				return nil, err
			}
		}
		return &Assign{base: base{pos}, Targets: targets, Value: value}, nil
	}
	return &ExprStmt{base: base{pos}, X: first}, nil
}

func checkAssignable(e Expr, p *parser, pos Position) error {
	switch t := e.(type) {
	case *Name, *Attribute, *Index, *SliceExpr:
		return nil
	case *TupleLit:
		for _, el := range t.Elts {
			if err := checkAssignable(el, p, pos); err != nil {
				return err
			}
		}
		return nil
	case *ListLit:
		for _, el := range t.Elts {
			if err := checkAssignable(el, p, pos); err != nil {
				return err
			}
		}
		return nil
	}
	return &Error{Pos: pos, Msg: "cannot assign to this expression", File: p.file}
}

// parseTestList parses test (',' test)* into a tuple when multiple.
func (p *parser) parseTestList() (Expr, error) {
	first, err := p.parseTest()
	if err != nil {
		return nil, err
	}
	if !p.at(OP, ",") {
		return first, nil
	}
	elts := []Expr{first}
	for p.accept(OP, ",") {
		if p.at(NEWLINE, "") || p.at(OP, "=") || p.at(OP, ")") ||
			p.at(OP, "]") || p.at(OP, "}") || p.at(OP, ":") || p.at(EOF, "") {
			break // trailing comma
		}
		e, err := p.parseTest()
		if err != nil {
			return nil, err
		}
		elts = append(elts, e)
	}
	return &TupleLit{base: base{first.NodePos()}, Elts: elts}, nil
}

// parseTest parses a full expression including conditional
// expressions and lambdas.
func (p *parser) parseTest() (Expr, error) {
	if p.at(KEYWORD, "lambda") {
		pos := p.next().Pos
		var params []Param
		if !p.at(OP, ":") {
			var err error
			params, err = p.parseLambdaParams()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(OP, ":"); err != nil {
			return nil, err
		}
		body, err := p.parseTest()
		if err != nil {
			return nil, err
		}
		return &Lambda{base: base{pos}, Params: params, Body: body}, nil
	}
	cond, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.at(KEYWORD, "if") {
		pos := p.next().Pos
		test, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(KEYWORD, "else"); err != nil {
			return nil, err
		}
		els, err := p.parseTest()
		if err != nil {
			return nil, err
		}
		return &IfExp{base: base{pos}, Cond: test, Then: cond, Else: els}, nil
	}
	return cond, nil
}

func (p *parser) parseLambdaParams() ([]Param, error) {
	var params []Param
	for {
		nameTok, err := p.expect(NAME, "")
		if err != nil {
			return nil, err
		}
		param := Param{Name: nameTok.Text}
		if p.accept(OP, "=") {
			def, err := p.parseTest()
			if err != nil {
				return nil, err
			}
			param.Default = def
		}
		params = append(params, param)
		if !p.accept(OP, ",") {
			return params, nil
		}
	}
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	if !p.at(KEYWORD, "or") {
		return left, nil
	}
	node := &BoolOp{base: base{left.NodePos()}, Op: "or", Values: []Expr{left}}
	for p.accept(KEYWORD, "or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		node.Values = append(node.Values, r)
	}
	return node, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	if !p.at(KEYWORD, "and") {
		return left, nil
	}
	node := &BoolOp{base: base{left.NodePos()}, Op: "and", Values: []Expr{left}}
	for p.accept(KEYWORD, "and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		node.Values = append(node.Values, r)
	}
	return node, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.at(KEYWORD, "not") {
		pos := p.next().Pos
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryOp{base: base{pos}, Op: "not", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseBitOr()
	if err != nil {
		return nil, err
	}
	var ops []string
	var rights []Expr
	for {
		var op string
		switch {
		case p.at(OP, "==") || p.at(OP, "!=") || p.at(OP, "<") ||
			p.at(OP, "<=") || p.at(OP, ">") || p.at(OP, ">="):
			op = p.next().Text
		case p.at(KEYWORD, "in"):
			p.next()
			op = "in"
		case p.at(KEYWORD, "not") && p.peek().Kind == KEYWORD && p.peek().Text == "in":
			p.next()
			p.next()
			op = "not in"
		case p.at(KEYWORD, "is"):
			p.next()
			if p.accept(KEYWORD, "not") {
				op = "is not"
			} else {
				op = "is"
			}
		default:
			if len(ops) == 0 {
				return left, nil
			}
			return &Compare{base: base{left.NodePos()}, L: left, Ops: ops, Rights: rights}, nil
		}
		r, err := p.parseBitOr()
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
		rights = append(rights, r)
	}
}

func (p *parser) parseBinLevel(ops []string, sub func() (Expr, error)) (Expr, error) {
	left, err := sub()
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range ops {
			if p.at(OP, op) {
				pos := p.next().Pos
				r, err := sub()
				if err != nil {
					return nil, err
				}
				left = &BinOp{base: base{pos}, Op: op, L: left, R: r}
				matched = true
				break
			}
		}
		if !matched {
			return left, nil
		}
	}
}

func (p *parser) parseBitOr() (Expr, error) {
	return p.parseBinLevel([]string{"|"}, p.parseBitXor)
}

func (p *parser) parseBitXor() (Expr, error) {
	return p.parseBinLevel([]string{"^"}, p.parseBitAnd)
}

func (p *parser) parseBitAnd() (Expr, error) {
	return p.parseBinLevel([]string{"&"}, p.parseShift)
}

func (p *parser) parseShift() (Expr, error) {
	return p.parseBinLevel([]string{"<<", ">>"}, p.parseArith)
}

func (p *parser) parseArith() (Expr, error) {
	return p.parseBinLevel([]string{"+", "-"}, p.parseTerm)
}

func (p *parser) parseTerm() (Expr, error) {
	return p.parseBinLevel([]string{"*", "//", "/", "%"}, p.parseUnary)
}

func (p *parser) parseUnary() (Expr, error) {
	if p.at(OP, "-") || p.at(OP, "+") || p.at(OP, "~") {
		op := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryOp{base: base{op.Pos}, Op: op.Text, X: x}, nil
	}
	return p.parsePower()
}

func (p *parser) parsePower() (Expr, error) {
	left, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	if p.at(OP, "**") {
		pos := p.next().Pos
		// ** is right-associative and binds tighter than unary on
		// its right: 2 ** -3 parses.
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &BinOp{base: base{pos}, Op: "**", L: left, R: r}, nil
	}
	return left, nil
}

// parsePostfix parses an atom followed by call/attribute/index
// trailers.
func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(OP, "("):
			pos := p.next().Pos
			call := &Call{base: base{pos}, Fn: x}
			for !p.at(OP, ")") {
				// Keyword argument?
				if p.cur().Kind == NAME && p.peek().Kind == OP && p.peek().Text == "=" {
					nameTok := p.next()
					p.next() // =
					v, err := p.parseTest()
					if err != nil {
						return nil, err
					}
					call.Keywords = append(call.Keywords, Keyword{Name: nameTok.Text, Value: v})
				} else {
					if len(call.Keywords) > 0 {
						return nil, p.errf("positional argument after keyword argument")
					}
					a, err := p.parseTest()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
				}
				if !p.accept(OP, ",") {
					break
				}
			}
			if _, err := p.expect(OP, ")"); err != nil {
				return nil, err
			}
			x = call
		case p.at(OP, "."):
			pos := p.next().Pos
			nameTok, err := p.expect(NAME, "")
			if err != nil {
				return nil, err
			}
			x = &Attribute{base: base{pos}, X: x, Name: nameTok.Text}
		case p.at(OP, "["):
			pos := p.next().Pos
			sub, err := p.parseSubscript(x, pos)
			if err != nil {
				return nil, err
			}
			x = sub
		default:
			return x, nil
		}
	}
}

// parseSubscript parses [i] or [lo:hi:step] after '['.
func (p *parser) parseSubscript(x Expr, pos Position) (Expr, error) {
	var lo, hi, step Expr
	var err error
	isSlice := false
	if !p.at(OP, ":") {
		lo, err = p.parseTest()
		if err != nil {
			return nil, err
		}
	}
	if p.accept(OP, ":") {
		isSlice = true
		if !p.at(OP, ":") && !p.at(OP, "]") {
			hi, err = p.parseTest()
			if err != nil {
				return nil, err
			}
		}
		if p.accept(OP, ":") {
			if !p.at(OP, "]") {
				step, err = p.parseTest()
				if err != nil {
					return nil, err
				}
			}
		}
	}
	if _, err := p.expect(OP, "]"); err != nil {
		return nil, err
	}
	if isSlice {
		return &SliceExpr{base: base{pos}, X: x, Lo: lo, Hi: hi, Step: step}, nil
	}
	return &Index{base: base{pos}, X: x, I: lo}, nil
}

func (p *parser) parseAtom() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case NAME:
		p.next()
		return &Name{base: base{t.Pos}, ID: t.Text}, nil
	case INT:
		p.next()
		v, err := strconv.ParseInt(t.Text, 0, 64)
		if err != nil {
			return nil, p.errf("invalid integer literal %q", t.Text)
		}
		return &IntLit{base: base{t.Pos}, V: v}, nil
	case FLOAT:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf("invalid float literal %q", t.Text)
		}
		return &FloatLit{base: base{t.Pos}, V: v}, nil
	case STRING:
		p.next()
		s := t.Text
		// Adjacent string literals concatenate.
		for p.cur().Kind == STRING {
			s += p.next().Text
		}
		return &StrLit{base: base{t.Pos}, V: s}, nil
	case KEYWORD:
		switch t.Text {
		case "True":
			p.next()
			return &BoolLit{base: base{t.Pos}, V: true}, nil
		case "False":
			p.next()
			return &BoolLit{base: base{t.Pos}, V: false}, nil
		case "None":
			p.next()
			return &NoneLit{base{t.Pos}}, nil
		case "lambda":
			return p.parseTest()
		}
	case OP:
		switch t.Text {
		case "(":
			p.next()
			if p.accept(OP, ")") {
				return &TupleLit{base: base{t.Pos}}, nil
			}
			inner, err := p.parseTestList()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(OP, ")"); err != nil {
				return nil, err
			}
			return inner, nil
		case "[":
			p.next()
			node := &ListLit{base: base{t.Pos}}
			for !p.at(OP, "]") {
				e, err := p.parseTest()
				if err != nil {
					return nil, err
				}
				node.Elts = append(node.Elts, e)
				if !p.accept(OP, ",") {
					break
				}
			}
			if _, err := p.expect(OP, "]"); err != nil {
				return nil, err
			}
			return node, nil
		case "{":
			p.next()
			if p.accept(OP, "}") {
				return &DictLit{base: base{t.Pos}}, nil
			}
			firstKey, err := p.parseTest()
			if err != nil {
				return nil, err
			}
			if p.at(OP, ":") {
				node := &DictLit{base: base{t.Pos}}
				node.Keys = append(node.Keys, firstKey)
				p.next()
				v, err := p.parseTest()
				if err != nil {
					return nil, err
				}
				node.Vals = append(node.Vals, v)
				for p.accept(OP, ",") {
					if p.at(OP, "}") {
						break
					}
					k, err := p.parseTest()
					if err != nil {
						return nil, err
					}
					if _, err := p.expect(OP, ":"); err != nil {
						return nil, err
					}
					v, err := p.parseTest()
					if err != nil {
						return nil, err
					}
					node.Keys = append(node.Keys, k)
					node.Vals = append(node.Vals, v)
				}
				if _, err := p.expect(OP, "}"); err != nil {
					return nil, err
				}
				return node, nil
			}
			// Set literal.
			node := &SetLit{base: base{t.Pos}, Elts: []Expr{firstKey}}
			for p.accept(OP, ",") {
				if p.at(OP, "}") {
					break
				}
				e, err := p.parseTest()
				if err != nil {
					return nil, err
				}
				node.Elts = append(node.Elts, e)
			}
			if _, err := p.expect(OP, "}"); err != nil {
				return nil, err
			}
			return node, nil
		}
	}
	return nil, p.errf("unexpected %s", t)
}
