package interp

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"github.com/omp4go/omp4go/internal/minipy"
	"github.com/omp4go/omp4go/internal/rt"
)

// Options configure an interpreter instance — the knobs that select
// which CPython the interpreter stands in for.
type Options struct {
	// GIL serializes bytecode execution with a global lock, modelling
	// a GIL-enabled CPython: threads exist but only one interprets at
	// a time. Default false (free-threaded, the paper's setting).
	GIL bool
	// GILCheckInterval is how many interpreter steps a thread runs
	// before offering the GIL to others (sys.setswitchinterval's
	// spiritual cousin). 0 means the default of 100.
	GILCheckInterval int
	// ContendedAlloc routes every boxed allocation through a shared
	// atomic counter, modelling the contended reference-count and
	// allocator paths that cap free-threaded CPython's scalability
	// (§IV-A). On for figure reproduction; off as an ablation.
	ContendedAlloc bool
	// Stdout receives print() output; defaults to os.Stdout.
	Stdout io.Writer
	// Layer selects the OpenMP runtime flavour: LayerMutex is the
	// paper's Python runtime (Pure mode), LayerAtomic the cruntime
	// (Hybrid and compiled modes).
	Layer rt.Layer
	// Getenv supplies OMP_* environment variables (nil = os.Getenv).
	Getenv func(string) string
}

// Interp is one MiniPy interpreter instance with its module globals
// and its OpenMP runtime.
type Interp struct {
	opts    Options
	globals *Env
	rt      *rt.Runtime
	gil     *gil
	allocs  atomic.Int64
	stdout  io.Writer
	outMu   sync.Mutex

	// budget is the armed execution budget (nil = unlimited); see
	// budget.go. Atomic so the serving layer can arm it per run while
	// worker threads are checking it.
	budget atomic.Pointer[budgetState]

	scopeMu sync.Mutex
	scopes  map[*minipy.FuncDef]*minipy.ScopeInfo

	modules map[string]*Module

	compileHook func(fd *minipy.FuncDef, fn *Function)
}

// New creates an interpreter.
func New(opts Options) *Interp {
	if opts.Stdout == nil {
		opts.Stdout = os.Stdout
	}
	in := &Interp{
		opts:    opts,
		globals: NewGlobalEnv(),
		rt:      rt.NewWithEnv(opts.Layer, opts.Getenv),
		stdout:  opts.Stdout,
		scopes:  make(map[*minipy.FuncDef]*minipy.ScopeInfo),
		modules: make(map[string]*Module),
	}
	if opts.GIL {
		interval := opts.GILCheckInterval
		if interval <= 0 {
			interval = 100
		}
		in.gil = newGIL(interval)
	}
	in.installBuiltins()
	in.installModules()
	return in
}

// Runtime exposes the interpreter's OpenMP runtime.
func (in *Interp) Runtime() *rt.Runtime { return in.rt }

// Globals exposes the module-level environment.
func (in *Interp) Globals() *Env { return in.globals }

// AllocCount returns the number of accounted allocations (tests and
// the contention ablation read it).
func (in *Interp) AllocCount() int64 { return in.allocs.Load() }

// Thread is the per-goroutine execution state: the MiniPy equivalent
// of a CPython thread state. It carries the OpenMP context so
// omp4py runtime builtins know their team.
type Thread struct {
	in        *Interp
	ctx       *rt.Context
	ops       int
	budgetOps int // steps since the last budget charge (see tick)

	// Per-thread stacks of in-flight worksharing construct handles
	// (the construct part of the paper's per-thread task stack).
	singles  []*rt.Single
	sections []*rt.Sections
}

// MainThread creates the initial thread of the program.
func (in *Interp) MainThread() *Thread {
	th := &Thread{in: in, ctx: in.rt.NewContext()}
	if in.gil != nil {
		in.gil.acquire()
	}
	return th
}

// Release returns the thread's GIL (call when the thread finishes).
func (th *Thread) Release() {
	if th.in.gil != nil {
		th.in.gil.release()
	}
}

// Interp returns the owning interpreter.
func (th *Thread) Interp() *Interp { return th.in }

// Ctx returns the thread's OpenMP context.
func (th *Thread) Ctx() *rt.Context { return th.ctx }

// spawn creates the thread state for a team member created by
// parallel_run.
func (in *Interp) spawn(ctx *rt.Context) *Thread {
	return &Thread{in: in, ctx: ctx}
}

// tick advances the interpreter step counter, yielding the GIL at the
// check interval and enforcing the execution budget when one is armed.
// pos is the source position charged for a budget violation.
func (th *Thread) tick(pos minipy.Position) error {
	th.ops++
	if th.in.gil != nil && th.ops%th.in.gil.interval == 0 {
		th.in.gil.yield()
	}
	if b := th.in.budget.Load(); b != nil {
		th.budgetOps++
		// Steps accumulate thread-locally and flush to the shared
		// counter every budgetStride steps; a sticky kill recorded by
		// any thread short-circuits the stride so the whole team dies
		// promptly.
		if th.budgetOps >= budgetStride || b.killed.Load() != nil {
			n := int64(th.budgetOps)
			th.budgetOps = 0
			return b.charge(n, pos)
		}
	}
	return nil
}

// account records a boxed allocation on the shared counter when the
// contention model is on, and against the execution budget when one
// bounds allocations.
func (th *Thread) account() {
	if th.in.opts.ContendedAlloc {
		th.in.allocs.Add(1)
	}
	if b := th.in.budget.Load(); b != nil && b.maxAllocs > 0 {
		// Overage is detected here but killed at the next tick: the
		// alloc sites have no error path, and a step is at most a
		// stride away.
		b.allocs.Add(1)
	}
}

// callBlocking invokes fn with the GIL dropped, the way CPython
// extensions wrap blocking calls.
func (th *Thread) callBlocking(fn func() error) error {
	if th.in.gil != nil {
		th.in.gil.release()
		defer th.in.gil.acquire()
	}
	return fn()
}

// RunModule executes a parsed module at top level and returns the
// module environment.
func (in *Interp) RunModule(mod *minipy.Module) error {
	th := in.MainThread()
	defer th.Release()
	return th.execBlock(in.globals, in.globals, mod.Body)
}

// RunSource parses and executes source.
func (in *Interp) RunSource(src, file string) error {
	mod, err := minipy.Parse(src, file)
	if err != nil {
		return err
	}
	return in.RunModule(mod)
}

// CallFunction invokes a MiniPy function value with the given
// arguments from Go.
func (in *Interp) CallFunction(fnName string, args ...Value) (Value, error) {
	cell, ok := in.globals.Resolve(fnName)
	if !ok {
		return nil, nameErrorf(minipy.Position{}, "name %q is not defined", fnName)
	}
	v, _ := cell.Get()
	th := in.MainThread()
	defer th.Release()
	return th.Call(v, args, minipy.Position{})
}

// scopeOf returns (computing and caching) the scope info of a
// function definition.
func (in *Interp) scopeOf(fd *minipy.FuncDef) *minipy.ScopeInfo {
	in.scopeMu.Lock()
	defer in.scopeMu.Unlock()
	if s, ok := in.scopes[fd]; ok {
		return s
	}
	s := minipy.AnalyzeScope(fd.Params, fd.Body)
	in.scopes[fd] = s
	return s
}

// printTo writes print() output under the output lock so parallel
// prints do not interleave bytes.
func (in *Interp) printTo(s string) {
	in.outMu.Lock()
	fmt.Fprint(in.stdout, s)
	in.outMu.Unlock()
}

// gil is the global interpreter lock model.
type gil struct {
	mu       sync.Mutex
	interval int
}

func newGIL(interval int) *gil { return &gil{interval: interval} }

func (g *gil) acquire() { g.mu.Lock() }
func (g *gil) release() { g.mu.Unlock() }

// yield offers the GIL to other threads.
func (g *gil) yield() {
	g.mu.Unlock()
	g.mu.Lock()
}
