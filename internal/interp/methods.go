package interp

import (
	"strconv"
	"strings"

	"github.com/omp4go/omp4go/internal/minipy"
)

// getAttr resolves obj.name: module attributes and built-in methods
// of list/dict/set/str values.
func (th *Thread) getAttr(obj Value, name string, pos minipy.Position) (Value, error) {
	if m, ok := obj.(*Module); ok {
		if v, ok := m.Attrs[name]; ok {
			return v, nil
		}
		return nil, &PyError{Type: "AttributeError",
			Msg: "module '" + m.Name + "' has no attribute '" + name + "'", Pos: pos}
	}
	if exc, ok := obj.(*ExcValue); ok && name == "args" {
		return &Tuple{Elts: []Value{exc.Msg}}, nil
	}
	var table map[string]methodImpl
	switch obj.(type) {
	case *List:
		table = listMethods
	case *Dict:
		table = dictMethods
	case *Set:
		table = setMethods
	case string:
		table = strMethods
	}
	if table != nil {
		if fn, ok := table[name]; ok {
			return &BoundMethod{Recv: obj, Name: name, Fn: fn}, nil
		}
	}
	return nil, &PyError{Type: "AttributeError",
		Msg: "'" + TypeName(obj) + "' object has no attribute '" + name + "'", Pos: pos}
}

type methodImpl = func(th *Thread, recv Value, args []Value) (Value, error)

func argCount(name string, args []Value, lo, hi int) error {
	if len(args) < lo || len(args) > hi {
		return &PyError{Type: "TypeError",
			Msg: name + "() takes between " + strconv.Itoa(lo) + " and " + strconv.Itoa(hi) + " arguments"}
	}
	return nil
}

var listMethods = map[string]methodImpl{
	"append": func(th *Thread, recv Value, args []Value) (Value, error) {
		if err := argCount("append", args, 1, 1); err != nil {
			return nil, err
		}
		recv.(*List).Append(args[0])
		return nil, nil
	},
	"extend": func(th *Thread, recv Value, args []Value) (Value, error) {
		if err := argCount("extend", args, 1, 1); err != nil {
			return nil, err
		}
		vals, err := iterValues(args[0])
		if err != nil {
			return nil, err
		}
		l := recv.(*List)
		for _, v := range vals {
			l.Append(v)
		}
		return nil, nil
	},
	"pop": func(th *Thread, recv Value, args []Value) (Value, error) {
		if err := argCount("pop", args, 0, 1); err != nil {
			return nil, err
		}
		i := int64(-1)
		if len(args) == 1 {
			n, ok := asInt(args[0])
			if !ok {
				return nil, &PyError{Type: "TypeError", Msg: "pop index must be int"}
			}
			i = n
		}
		v, ok := recv.(*List).Pop(int(i))
		if !ok {
			return nil, &PyError{Type: "IndexError", Msg: "pop index out of range"}
		}
		return v, nil
	},
	"insert": func(th *Thread, recv Value, args []Value) (Value, error) {
		if err := argCount("insert", args, 2, 2); err != nil {
			return nil, err
		}
		i, ok := asInt(args[0])
		if !ok {
			return nil, &PyError{Type: "TypeError", Msg: "insert index must be int"}
		}
		recv.(*List).Insert(int(i), args[1])
		return nil, nil
	},
	"sort": func(th *Thread, recv Value, args []Value) (Value, error) {
		if err := recv.(*List).SortInPlace(); err != nil {
			return nil, err
		}
		return nil, nil
	},
	"reverse": func(th *Thread, recv Value, args []Value) (Value, error) {
		l := recv.(*List)
		n := l.Len()
		for i := 0; i < n/2; i++ {
			a, b := l.Get(i), l.Get(n-1-i)
			l.Set(i, b)
			l.Set(n-1-i, a)
		}
		return nil, nil
	},
	"index": func(th *Thread, recv Value, args []Value) (Value, error) {
		if err := argCount("index", args, 1, 1); err != nil {
			return nil, err
		}
		l := recv.(*List)
		for i := 0; i < l.Len(); i++ {
			if valueEqual(l.Get(i), args[0]) {
				return int64(i), nil
			}
		}
		return nil, &PyError{Type: "ValueError", Msg: Repr(args[0]) + " is not in list"}
	},
	"count": func(th *Thread, recv Value, args []Value) (Value, error) {
		if err := argCount("count", args, 1, 1); err != nil {
			return nil, err
		}
		l := recv.(*List)
		n := int64(0)
		for i := 0; i < l.Len(); i++ {
			if valueEqual(l.Get(i), args[0]) {
				n++
			}
		}
		return n, nil
	},
	"clear": func(th *Thread, recv Value, args []Value) (Value, error) {
		l := recv.(*List)
		for l.Len() > 0 {
			l.Pop(-1)
		}
		return nil, nil
	},
	"copy": func(th *Thread, recv Value, args []Value) (Value, error) {
		return NewList(recv.(*List).Values()), nil
	},
}

var dictMethods = map[string]methodImpl{
	"get": func(th *Thread, recv Value, args []Value) (Value, error) {
		if err := argCount("get", args, 1, 2); err != nil {
			return nil, err
		}
		v, ok, err := recv.(*Dict).Get(args[0])
		if err != nil {
			return nil, err
		}
		if ok {
			return v, nil
		}
		if len(args) == 2 {
			return args[1], nil
		}
		return nil, nil
	},
	"keys": func(th *Thread, recv Value, args []Value) (Value, error) {
		items := recv.(*Dict).Items()
		out := make([]Value, len(items))
		for i, kv := range items {
			out[i] = kv[0]
		}
		return NewList(out), nil
	},
	"values": func(th *Thread, recv Value, args []Value) (Value, error) {
		items := recv.(*Dict).Items()
		out := make([]Value, len(items))
		for i, kv := range items {
			out[i] = kv[1]
		}
		return NewList(out), nil
	},
	"items": func(th *Thread, recv Value, args []Value) (Value, error) {
		items := recv.(*Dict).Items()
		out := make([]Value, len(items))
		for i, kv := range items {
			out[i] = &Tuple{Elts: []Value{kv[0], kv[1]}}
		}
		return NewList(out), nil
	},
	"pop": func(th *Thread, recv Value, args []Value) (Value, error) {
		if err := argCount("pop", args, 1, 2); err != nil {
			return nil, err
		}
		d := recv.(*Dict)
		v, ok, err := d.Get(args[0])
		if err != nil {
			return nil, err
		}
		if !ok {
			if len(args) == 2 {
				return args[1], nil
			}
			return nil, &PyError{Type: "KeyError", Msg: Repr(args[0])}
		}
		if _, err := d.Delete(args[0]); err != nil {
			return nil, err
		}
		return v, nil
	},
	"setdefault": func(th *Thread, recv Value, args []Value) (Value, error) {
		if err := argCount("setdefault", args, 1, 2); err != nil {
			return nil, err
		}
		d := recv.(*Dict)
		var def Value
		if len(args) == 2 {
			def = args[1]
		}
		v, ok, err := d.Get(args[0])
		if err != nil {
			return nil, err
		}
		if ok {
			return v, nil
		}
		if err := d.Set(args[0], def); err != nil {
			return nil, err
		}
		return def, nil
	},
	"update": func(th *Thread, recv Value, args []Value) (Value, error) {
		if err := argCount("update", args, 1, 1); err != nil {
			return nil, err
		}
		src, ok := args[0].(*Dict)
		if !ok {
			return nil, &PyError{Type: "TypeError", Msg: "update() argument must be dict"}
		}
		d := recv.(*Dict)
		for _, kv := range src.Items() {
			if err := d.Set(kv[0], kv[1]); err != nil {
				return nil, err
			}
		}
		return nil, nil
	},
	"clear": func(th *Thread, recv Value, args []Value) (Value, error) {
		d := recv.(*Dict)
		for _, kv := range d.Items() {
			if _, err := d.Delete(kv[0]); err != nil {
				return nil, err
			}
		}
		return nil, nil
	},
	"copy": func(th *Thread, recv Value, args []Value) (Value, error) {
		d := recv.(*Dict)
		out := NewDict()
		for _, kv := range d.Items() {
			if err := out.Set(kv[0], kv[1]); err != nil {
				return nil, err
			}
		}
		return out, nil
	},
}

var setMethods = map[string]methodImpl{
	"add": func(th *Thread, recv Value, args []Value) (Value, error) {
		if err := argCount("add", args, 1, 1); err != nil {
			return nil, err
		}
		return nil, recv.(*Set).Add(args[0])
	},
	"remove": func(th *Thread, recv Value, args []Value) (Value, error) {
		if err := argCount("remove", args, 1, 1); err != nil {
			return nil, err
		}
		ok, err := recv.(*Set).Remove(args[0])
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, &PyError{Type: "KeyError", Msg: Repr(args[0])}
		}
		return nil, nil
	},
	"discard": func(th *Thread, recv Value, args []Value) (Value, error) {
		if err := argCount("discard", args, 1, 1); err != nil {
			return nil, err
		}
		_, err := recv.(*Set).Remove(args[0])
		return nil, err
	},
	"union": func(th *Thread, recv Value, args []Value) (Value, error) {
		out := NewSet()
		for _, v := range recv.(*Set).Values() {
			if err := out.Add(v); err != nil {
				return nil, err
			}
		}
		for _, a := range args {
			vals, err := iterValues(a)
			if err != nil {
				return nil, err
			}
			for _, v := range vals {
				if err := out.Add(v); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	},
	"intersection": func(th *Thread, recv Value, args []Value) (Value, error) {
		if err := argCount("intersection", args, 1, 1); err != nil {
			return nil, err
		}
		other, ok := args[0].(*Set)
		if !ok {
			return nil, &PyError{Type: "TypeError", Msg: "intersection() argument must be set"}
		}
		out := NewSet()
		for _, v := range recv.(*Set).Values() {
			has, err := other.Has(v)
			if err != nil {
				return nil, err
			}
			if has {
				if err := out.Add(v); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	},
}

var strMethods = map[string]methodImpl{
	"split": func(th *Thread, recv Value, args []Value) (Value, error) {
		s := recv.(string)
		var parts []string
		if len(args) == 0 {
			parts = strings.Fields(s)
		} else {
			sep, ok := args[0].(string)
			if !ok || sep == "" {
				return nil, &PyError{Type: "ValueError", Msg: "empty separator"}
			}
			parts = strings.Split(s, sep)
		}
		out := make([]Value, len(parts))
		for i, p := range parts {
			out[i] = p
		}
		return NewList(out), nil
	},
	"join": func(th *Thread, recv Value, args []Value) (Value, error) {
		if err := argCount("join", args, 1, 1); err != nil {
			return nil, err
		}
		vals, err := iterValues(args[0])
		if err != nil {
			return nil, err
		}
		parts := make([]string, len(vals))
		for i, v := range vals {
			s, ok := v.(string)
			if !ok {
				return nil, &PyError{Type: "TypeError",
					Msg: "sequence item " + strconv.Itoa(i) + ": expected str instance"}
			}
			parts[i] = s
		}
		return strings.Join(parts, recv.(string)), nil
	},
	"lower": func(th *Thread, recv Value, args []Value) (Value, error) {
		return strings.ToLower(recv.(string)), nil
	},
	"upper": func(th *Thread, recv Value, args []Value) (Value, error) {
		return strings.ToUpper(recv.(string)), nil
	},
	"strip": func(th *Thread, recv Value, args []Value) (Value, error) {
		if len(args) == 1 {
			cut, ok := args[0].(string)
			if !ok {
				return nil, &PyError{Type: "TypeError", Msg: "strip arg must be str"}
			}
			return strings.Trim(recv.(string), cut), nil
		}
		return strings.TrimSpace(recv.(string)), nil
	},
	"replace": func(th *Thread, recv Value, args []Value) (Value, error) {
		if err := argCount("replace", args, 2, 2); err != nil {
			return nil, err
		}
		old, ok1 := args[0].(string)
		new_, ok2 := args[1].(string)
		if !ok1 || !ok2 {
			return nil, &PyError{Type: "TypeError", Msg: "replace arguments must be str"}
		}
		return strings.ReplaceAll(recv.(string), old, new_), nil
	},
	"startswith": func(th *Thread, recv Value, args []Value) (Value, error) {
		if err := argCount("startswith", args, 1, 1); err != nil {
			return nil, err
		}
		p, ok := args[0].(string)
		if !ok {
			return nil, &PyError{Type: "TypeError", Msg: "startswith argument must be str"}
		}
		return strings.HasPrefix(recv.(string), p), nil
	},
	"endswith": func(th *Thread, recv Value, args []Value) (Value, error) {
		if err := argCount("endswith", args, 1, 1); err != nil {
			return nil, err
		}
		p, ok := args[0].(string)
		if !ok {
			return nil, &PyError{Type: "TypeError", Msg: "endswith argument must be str"}
		}
		return strings.HasSuffix(recv.(string), p), nil
	},
	"find": func(th *Thread, recv Value, args []Value) (Value, error) {
		if err := argCount("find", args, 1, 1); err != nil {
			return nil, err
		}
		p, ok := args[0].(string)
		if !ok {
			return nil, &PyError{Type: "TypeError", Msg: "find argument must be str"}
		}
		return int64(strings.Index(recv.(string), p)), nil
	},
	"count": func(th *Thread, recv Value, args []Value) (Value, error) {
		if err := argCount("count", args, 1, 1); err != nil {
			return nil, err
		}
		p, ok := args[0].(string)
		if !ok {
			return nil, &PyError{Type: "TypeError", Msg: "count argument must be str"}
		}
		return int64(strings.Count(recv.(string), p)), nil
	},
	"isalpha": func(th *Thread, recv Value, args []Value) (Value, error) {
		s := recv.(string)
		if s == "" {
			return false, nil
		}
		for _, r := range s {
			if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= 0x80) {
				return false, nil
			}
		}
		return true, nil
	},
	"isdigit": func(th *Thread, recv Value, args []Value) (Value, error) {
		s := recv.(string)
		if s == "" {
			return false, nil
		}
		for _, r := range s {
			if r < '0' || r > '9' {
				return false, nil
			}
		}
		return true, nil
	},
}
