package interp

import "sync"

// Cell is one variable binding. Cells are shared between a scope and
// the closures that capture it, giving Python's nonlocal semantics.
// Cells created before a parallel region are read (and, via nonlocal,
// written) by every team thread.
type Cell struct {
	v   Value
	set bool
}

// Get returns the cell's value.
func (c *Cell) Get() (Value, bool) { return c.v, c.set }

// SetValue stores v.
func (c *Cell) SetValue(v Value) { c.v = v; c.set = true }

// Env is a map-based lexical environment: the deliberate slowness of
// the Pure mode. Each function call allocates a fresh Env whose cells
// hold the function's locals; lookups walk the parent chain.
//
// Module-level (global) environments are accessed concurrently by
// team threads and guard their map with a mutex; function-local
// environments are single-owner at creation time and share cells (not
// the map) with inner functions, so they stay lock-free.
type Env struct {
	vars   map[string]*Cell
	parent *Env
	shared bool
	mu     sync.Mutex
}

// NewEnv creates a function-local environment under parent.
func NewEnv(parent *Env) *Env {
	return &Env{vars: make(map[string]*Cell), parent: parent}
}

// NewGlobalEnv creates a module-level environment (thread-safe map).
func NewGlobalEnv() *Env {
	return &Env{vars: make(map[string]*Cell), shared: true}
}

// Define creates (or returns) the local cell for name in this env.
func (e *Env) Define(name string) *Cell {
	if e.shared {
		e.mu.Lock()
		defer e.mu.Unlock()
	}
	if c, ok := e.vars[name]; ok {
		return c
	}
	c := &Cell{}
	e.vars[name] = c
	return c
}

// DefineValue creates the cell and assigns v.
func (e *Env) DefineValue(name string, v Value) *Cell {
	c := e.Define(name)
	c.SetValue(v)
	return c
}

// Lookup finds the cell for name in this env only.
func (e *Env) Lookup(name string) (*Cell, bool) {
	if e.shared {
		e.mu.Lock()
		defer e.mu.Unlock()
	}
	c, ok := e.vars[name]
	return c, ok
}

// Resolve walks the lexical chain for name.
func (e *Env) Resolve(name string) (*Cell, bool) {
	for env := e; env != nil; env = env.parent {
		if c, ok := env.Lookup(name); ok {
			return c, true
		}
	}
	return nil, false
}
