package interp

import (
	"math"
	"strings"

	"github.com/omp4go/omp4go/internal/minipy"
)

func (th *Thread) evalExpr(fr *frame, e minipy.Expr) (Value, error) {
	if err := th.tick(e.NodePos()); err != nil {
		return nil, err
	}
	switch t := e.(type) {
	case *minipy.Name:
		return th.lookupName(fr, t)
	case *minipy.IntLit:
		th.account()
		return t.V, nil
	case *minipy.FloatLit:
		th.account()
		return t.V, nil
	case *minipy.StrLit:
		return t.V, nil
	case *minipy.BoolLit:
		return t.V, nil
	case *minipy.NoneLit:
		return nil, nil
	case *minipy.BinOp:
		l, err := th.evalExpr(fr, t.L)
		if err != nil {
			return nil, err
		}
		r, err := th.evalExpr(fr, t.R)
		if err != nil {
			return nil, err
		}
		return th.binaryOp(t.Op, l, r, t.NodePos())
	case *minipy.BoolOp:
		if t.Op == "and" {
			var v Value
			for _, sub := range t.Values {
				var err error
				v, err = th.evalExpr(fr, sub)
				if err != nil {
					return nil, err
				}
				if !Truthy(v) {
					return v, nil
				}
			}
			return v, nil
		}
		var v Value
		for _, sub := range t.Values {
			var err error
			v, err = th.evalExpr(fr, sub)
			if err != nil {
				return nil, err
			}
			if Truthy(v) {
				return v, nil
			}
		}
		return v, nil
	case *minipy.UnaryOp:
		x, err := th.evalExpr(fr, t.X)
		if err != nil {
			return nil, err
		}
		return th.unaryOp(t.Op, x, t.NodePos())
	case *minipy.Compare:
		l, err := th.evalExpr(fr, t.L)
		if err != nil {
			return nil, err
		}
		for i, op := range t.Ops {
			r, err := th.evalExpr(fr, t.Rights[i])
			if err != nil {
				return nil, err
			}
			ok, err := th.compareOp(op, l, r, t.NodePos())
			if err != nil {
				return nil, err
			}
			if !ok {
				return false, nil
			}
			l = r
		}
		return true, nil
	case *minipy.Call:
		return th.evalCall(fr, t)
	case *minipy.Attribute:
		obj, err := th.evalExpr(fr, t.X)
		if err != nil {
			return nil, err
		}
		return th.getAttr(obj, t.Name, t.NodePos())
	case *minipy.Index:
		cont, err := th.evalExpr(fr, t.X)
		if err != nil {
			return nil, err
		}
		idx, err := th.evalExpr(fr, t.I)
		if err != nil {
			return nil, err
		}
		return th.getItem(cont, idx, t.NodePos())
	case *minipy.SliceExpr:
		return th.evalSlice(fr, t)
	case *minipy.ListLit:
		elts := make([]Value, len(t.Elts))
		for i, el := range t.Elts {
			v, err := th.evalExpr(fr, el)
			if err != nil {
				return nil, err
			}
			elts[i] = v
		}
		th.account()
		return NewList(elts), nil
	case *minipy.TupleLit:
		elts := make([]Value, len(t.Elts))
		for i, el := range t.Elts {
			v, err := th.evalExpr(fr, el)
			if err != nil {
				return nil, err
			}
			elts[i] = v
		}
		th.account()
		return &Tuple{Elts: elts}, nil
	case *minipy.DictLit:
		d := NewDict()
		for i := range t.Keys {
			k, err := th.evalExpr(fr, t.Keys[i])
			if err != nil {
				return nil, err
			}
			v, err := th.evalExpr(fr, t.Vals[i])
			if err != nil {
				return nil, err
			}
			if err := d.Set(k, v); err != nil {
				return nil, err
			}
		}
		th.account()
		return d, nil
	case *minipy.SetLit:
		s := NewSet()
		for _, el := range t.Elts {
			v, err := th.evalExpr(fr, el)
			if err != nil {
				return nil, err
			}
			if err := s.Add(v); err != nil {
				return nil, err
			}
		}
		th.account()
		return s, nil
	case *minipy.IfExp:
		cond, err := th.evalExpr(fr, t.Cond)
		if err != nil {
			return nil, err
		}
		if Truthy(cond) {
			return th.evalExpr(fr, t.Then)
		}
		return th.evalExpr(fr, t.Else)
	case *minipy.Lambda:
		scope := minipy.AnalyzeScope(t.Params, nil)
		fn := &Function{
			Name:    "<lambda>",
			Params:  t.Params,
			Body:    []minipy.Stmt{&minipy.Return{Value: t.Body}},
			Env:     fr.env,
			Scope:   scope,
			Globals: fr.globals,
		}
		for _, p := range t.Params {
			if p.Default == nil {
				fn.Defaults = append(fn.Defaults, nil)
				continue
			}
			v, err := th.evalExpr(fr, p.Default)
			if err != nil {
				return nil, err
			}
			fn.Defaults = append(fn.Defaults, v)
		}
		return fn, nil
	}
	return nil, typeErrorf(e.NodePos(), "unsupported expression %T", e)
}

func (th *Thread) lookupName(fr *frame, t *minipy.Name) (Value, error) {
	if fr.scope != nil && fr.scope.IsLocal(t.ID) {
		if c, ok := fr.env.Lookup(t.ID); ok {
			if v, set := c.Get(); set {
				return v, nil
			}
		}
		return nil, &PyError{Type: "UnboundLocalError",
			Msg: "local variable '" + t.ID + "' referenced before assignment", Pos: t.NodePos()}
	}
	if fr.scope != nil && fr.scope.Globals[t.ID] {
		if c, ok := fr.globals.Lookup(t.ID); ok {
			if v, set := c.Get(); set {
				return v, nil
			}
		}
		return nil, nameErrorf(t.NodePos(), "name %q is not defined", t.ID)
	}
	for env := fr.env; env != nil; env = env.parent {
		if c, ok := env.Lookup(t.ID); ok {
			if v, set := c.Get(); set {
				return v, nil
			}
		}
	}
	// Fall back to module globals (the function may have been
	// defined in a chain that does not end at them).
	if c, ok := fr.globals.Lookup(t.ID); ok {
		if v, set := c.Get(); set {
			return v, nil
		}
	}
	return nil, nameErrorf(t.NodePos(), "name %q is not defined", t.ID)
}

func (th *Thread) evalCall(fr *frame, t *minipy.Call) (Value, error) {
	fn, err := th.evalExpr(fr, t.Fn)
	if err != nil {
		return nil, err
	}
	args := make([]Value, len(t.Args))
	for i, a := range t.Args {
		v, err := th.evalExpr(fr, a)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	if len(t.Keywords) == 0 {
		return th.Call(fn, args, t.NodePos())
	}
	kwargs := make(map[string]Value, len(t.Keywords))
	for _, kw := range t.Keywords {
		v, err := th.evalExpr(fr, kw.Value)
		if err != nil {
			return nil, err
		}
		kwargs[kw.Name] = v
	}
	return th.CallKw(fn, args, kwargs, t.NodePos())
}

// Call invokes a callable value.
func (th *Thread) Call(fn Value, args []Value, pos minipy.Position) (Value, error) {
	return th.CallKw(fn, args, nil, pos)
}

// CallKw invokes a callable value with keyword arguments.
func (th *Thread) CallKw(fn Value, args []Value, kwargs map[string]Value, pos minipy.Position) (Value, error) {
	if err := th.tick(pos); err != nil {
		return nil, err
	}
	switch f := fn.(type) {
	case *Builtin:
		if len(kwargs) > 0 {
			if f.FnKw == nil {
				return nil, typeErrorf(pos, "%s() takes no keyword arguments", f.Name)
			}
			return f.FnKw(th, args, kwargs)
		}
		if f.Fn == nil {
			return f.FnKw(th, args, nil)
		}
		if f.ReleasesGIL && th.in.gil != nil {
			var v Value
			var err error
			gerr := th.callBlocking(func() error {
				v, err = f.Fn(th, args)
				return nil
			})
			if gerr != nil {
				return nil, gerr
			}
			return v, err
		}
		return f.Fn(th, args)
	case *BoundMethod:
		if len(kwargs) > 0 {
			return nil, typeErrorf(pos, "method %s() takes no keyword arguments", f.Name)
		}
		return f.Fn(th, f.Recv, args)
	case *Function:
		return th.callFunction(f, args, kwargs, pos)
	}
	return nil, typeErrorf(pos, "'%s' object is not callable", TypeName(fn))
}

func (th *Thread) callFunction(f *Function, args []Value, kwargs map[string]Value, pos minipy.Position) (Value, error) {
	if f.Compiled != nil && len(kwargs) == 0 {
		return f.Compiled(th, args)
	}
	if len(args) > len(f.Params) {
		return nil, typeErrorf(pos, "%s() takes %d positional arguments but %d were given",
			f.Name, len(f.Params), len(args))
	}
	env := NewEnv(f.Env)
	used := 0
	for i, p := range f.Params {
		var v Value
		switch {
		case i < len(args):
			v = args[i]
		case kwargs != nil && hasKey(kwargs, p.Name):
			v = kwargs[p.Name]
			used++
		case f.Defaults[i] != nil || p.Default != nil:
			v = f.Defaults[i]
		default:
			return nil, typeErrorf(pos, "%s() missing required argument: '%s'", f.Name, p.Name)
		}
		env.DefineValue(p.Name, v)
	}
	if kwargs != nil && used < len(kwargs) {
		for k := range kwargs {
			known := false
			for _, p := range f.Params {
				if p.Name == k {
					known = true
					break
				}
			}
			if !known {
				return nil, typeErrorf(pos, "%s() got an unexpected keyword argument '%s'", f.Name, k)
			}
		}
	}
	// Pre-bind every local so the env map is fully populated before
	// the body runs. Assignments then only store into existing cells,
	// never insert map keys — which makes the lock-free concurrent
	// Lookups performed by escaped closures (tasks capturing this
	// frame's env while the owner keeps executing) safe. Unset cells
	// still surface as UnboundLocalError on read.
	if f.Scope != nil {
		for _, name := range f.Scope.Locals {
			env.Define(name)
		}
	}
	fr := &frame{env: env, globals: f.Globals, scope: f.Scope}
	err := th.execStmts(fr, f.Body)
	if err != nil {
		if ret, ok := err.(returnSignal); ok {
			return ret.v, nil
		}
		return nil, err
	}
	return nil, nil
}

func hasKey(m map[string]Value, k string) bool {
	_, ok := m[k]
	return ok
}

func (th *Thread) evalSlice(fr *frame, t *minipy.SliceExpr) (Value, error) {
	cont, err := th.evalExpr(fr, t.X)
	if err != nil {
		return nil, err
	}
	var parts [3]int64
	var set [3]bool
	for i, e := range []minipy.Expr{t.Lo, t.Hi, t.Step} {
		if e == nil {
			continue
		}
		v, err := th.evalExpr(fr, e)
		if err != nil {
			return nil, err
		}
		n, ok := asInt(v)
		if !ok {
			return nil, typeErrorf(t.NodePos(), "slice indices must be integers")
		}
		parts[i], set[i] = n, true
	}
	return SliceOf(cont, set[0], parts[0], set[1], parts[1], set[2], parts[2], t.NodePos())
}

// SliceOf implements x[lo:hi:step] on lists, strings, and tuples; the
// Set flags distinguish omitted parts from explicit values. It is
// shared by the interpreter and the compiled code path.
func SliceOf(cont Value, loSet bool, lo int64, hiSet bool, hi int64,
	stepSet bool, step int64, pos minipy.Position) (Value, error) {
	if !stepSet {
		step = 1
	}
	if step == 0 {
		return nil, valueErrorf(pos, "slice step cannot be zero")
	}
	var length int64
	switch c := cont.(type) {
	case *List:
		length = int64(c.Len())
	case string:
		length = int64(len(c))
	case *Tuple:
		length = int64(len(c.Elts))
	default:
		return nil, typeErrorf(pos, "'%s' object is not subscriptable", TypeName(cont))
	}
	if !loSet {
		if step > 0 {
			lo = 0
		} else {
			lo = length - 1
		}
	}
	if !hiSet {
		if step > 0 {
			hi = length
		} else {
			hi = -length - 1
		}
	}
	lo = clampSliceIndex(lo, length, step)
	hi = clampSliceIndex(hi, length, step)
	switch c := cont.(type) {
	case *List:
		return c.Slice(int(lo), int(hi), int(step)), nil
	case string:
		var b strings.Builder
		if step > 0 {
			for i := lo; i < hi; i += step {
				b.WriteByte(c[i])
			}
		} else {
			for i := lo; i > hi; i += step {
				b.WriteByte(c[i])
			}
		}
		return b.String(), nil
	case *Tuple:
		var elts []Value
		if step > 0 {
			for i := lo; i < hi; i += step {
				elts = append(elts, c.Elts[i])
			}
		} else {
			for i := lo; i > hi; i += step {
				elts = append(elts, c.Elts[i])
			}
		}
		return &Tuple{Elts: elts}, nil
	}
	return nil, typeErrorf(pos, "unreachable slice")
}

func clampSliceIndex(i, length, step int64) int64 {
	if i < 0 {
		i += length
	}
	if step > 0 {
		if i < 0 {
			i = 0
		}
		if i > length {
			i = length
		}
	} else {
		if i < -1 {
			i = -1
		}
		if i > length-1 {
			i = length - 1
		}
	}
	return i
}

// getItem implements container[index].
func (th *Thread) getItem(cont, idx Value, pos minipy.Position) (Value, error) {
	switch c := cont.(type) {
	case *BoundsVal:
		// Generated code reads the chunk bounds like the
		// __omp_bounds array of Fig. 3.
		i, ok := asInt(idx)
		if !ok {
			return nil, typeErrorf(pos, "loop bounds indices must be integers")
		}
		switch i {
		case 0:
			return c.B.LoValue(), nil
		case 1:
			return c.B.HiValue(), nil
		case 2:
			return c.B.Triplets[0].Step, nil
		}
		return nil, &PyError{Type: "IndexError", Msg: "loop bounds index out of range", Pos: pos}
	case *List:
		i, ok := asInt(idx)
		if !ok {
			return nil, typeErrorf(pos, "list indices must be integers, not %s", TypeName(idx))
		}
		n := int64(c.Len())
		if i < 0 {
			i += n
		}
		if i < 0 || i >= n {
			return nil, &PyError{Type: "IndexError", Msg: "list index out of range", Pos: pos}
		}
		return c.Get(int(i)), nil
	case *Tuple:
		i, ok := asInt(idx)
		if !ok {
			return nil, typeErrorf(pos, "tuple indices must be integers")
		}
		n := int64(len(c.Elts))
		if i < 0 {
			i += n
		}
		if i < 0 || i >= n {
			return nil, &PyError{Type: "IndexError", Msg: "tuple index out of range", Pos: pos}
		}
		return c.Elts[i], nil
	case *Dict:
		v, ok, err := c.Get(idx)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, &PyError{Type: "KeyError", Msg: Repr(idx), Pos: pos}
		}
		return v, nil
	case string:
		i, ok := asInt(idx)
		if !ok {
			return nil, typeErrorf(pos, "string indices must be integers")
		}
		n := int64(len(c))
		if i < 0 {
			i += n
		}
		if i < 0 || i >= n {
			return nil, &PyError{Type: "IndexError", Msg: "string index out of range", Pos: pos}
		}
		return string(c[i]), nil
	}
	return nil, typeErrorf(pos, "'%s' object is not subscriptable", TypeName(cont))
}

// setItem implements container[index] = value.
func (th *Thread) setItem(cont, idx, v Value, pos minipy.Position) error {
	switch c := cont.(type) {
	case *List:
		i, ok := asInt(idx)
		if !ok {
			return typeErrorf(pos, "list indices must be integers, not %s", TypeName(idx))
		}
		n := int64(c.Len())
		if i < 0 {
			i += n
		}
		if i < 0 || i >= n {
			return &PyError{Type: "IndexError", Msg: "list assignment index out of range", Pos: pos}
		}
		c.Set(int(i), v)
		return nil
	case *Dict:
		return c.Set(idx, v)
	}
	return typeErrorf(pos, "'%s' object does not support item assignment", TypeName(cont))
}

// asInt extracts an int64 from int64 or bool (Python treats bools as
// ints in numeric positions).
func asInt(v Value) (int64, bool) {
	switch t := v.(type) {
	case int64:
		return t, true
	case bool:
		if t {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

func asFloat(v Value) (float64, bool) {
	switch t := v.(type) {
	case float64:
		return t, true
	case int64:
		return float64(t), true
	case bool:
		if t {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// binaryOp implements MiniPy's binary operators with Python numeric
// semantics (true division yields float; floor division and modulo
// follow the sign of the divisor).
func (th *Thread) binaryOp(op string, l, r Value, pos minipy.Position) (Value, error) {
	// Fast numeric paths first.
	li, lIsInt := l.(int64)
	ri, rIsInt := r.(int64)
	if lIsInt && rIsInt {
		return th.intOp(op, li, ri, pos)
	}
	lf, lIsNum := asFloat(l)
	rf, rIsNum := asFloat(r)
	if lIsNum && rIsNum {
		// Mixed int/float (or bools): float semantics, except that
		// two ints were handled above.
		if isIntLike(l) && isIntLike(r) {
			la, _ := asInt(l)
			ra, _ := asInt(r)
			return th.intOp(op, la, ra, pos)
		}
		return th.floatOp(op, lf, rf, pos)
	}
	switch op {
	case "+":
		switch a := l.(type) {
		case string:
			if b, ok := r.(string); ok {
				th.account()
				return a + b, nil
			}
		case *List:
			if b, ok := r.(*List); ok {
				th.account()
				return NewList(append(a.Values(), b.Values()...)), nil
			}
		case *Tuple:
			if b, ok := r.(*Tuple); ok {
				th.account()
				return &Tuple{Elts: append(append([]Value{}, a.Elts...), b.Elts...)}, nil
			}
		}
	case "*":
		if s, ok := l.(string); ok {
			if n, ok := asInt(r); ok {
				th.account()
				return strings.Repeat(s, intMax0(n)), nil
			}
		}
		if n, ok := asInt(l); ok {
			if s, ok := r.(string); ok {
				th.account()
				return strings.Repeat(s, intMax0(n)), nil
			}
		}
		if lst, ok := l.(*List); ok {
			if n, ok := asInt(r); ok {
				return repeatList(lst, n), nil
			}
		}
		if n, ok := asInt(l); ok {
			if lst, ok := r.(*List); ok {
				return repeatList(lst, n), nil
			}
		}
	case "%":
		// String formatting with %: minimal support for "%s"/"%d".
		if s, ok := l.(string); ok {
			return pyFormat(s, r), nil
		}
	}
	return nil, typeErrorf(pos, "unsupported operand type(s) for %s: '%s' and '%s'",
		op, TypeName(l), TypeName(r))
}

func isIntLike(v Value) bool {
	switch v.(type) {
	case int64, bool:
		return true
	}
	return false
}

func intMax0(n int64) int {
	if n < 0 {
		return 0
	}
	return int(n)
}

func repeatList(l *List, n int64) *List {
	vals := l.Values()
	out := make([]Value, 0, int(n)*len(vals))
	for i := int64(0); i < n; i++ {
		out = append(out, vals...)
	}
	return NewList(out)
}

func (th *Thread) intOp(op string, a, b int64, pos minipy.Position) (Value, error) {
	th.account()
	switch op {
	case "+":
		return a + b, nil
	case "-":
		return a - b, nil
	case "*":
		return a * b, nil
	case "/":
		if b == 0 {
			return nil, &PyError{Type: "ZeroDivisionError", Msg: "division by zero", Pos: pos}
		}
		return float64(a) / float64(b), nil
	case "//":
		if b == 0 {
			return nil, &PyError{Type: "ZeroDivisionError", Msg: "integer division or modulo by zero", Pos: pos}
		}
		q := a / b
		if (a%b != 0) && ((a < 0) != (b < 0)) {
			q--
		}
		return q, nil
	case "%":
		if b == 0 {
			return nil, &PyError{Type: "ZeroDivisionError", Msg: "integer division or modulo by zero", Pos: pos}
		}
		m := a % b
		if m != 0 && ((a < 0) != (b < 0)) {
			m += b
		}
		return m, nil
	case "**":
		if b < 0 {
			return math.Pow(float64(a), float64(b)), nil
		}
		result := int64(1)
		base := a
		exp := b
		for exp > 0 {
			if exp&1 == 1 {
				result *= base
			}
			base *= base
			exp >>= 1
		}
		return result, nil
	case "&":
		return a & b, nil
	case "|":
		return a | b, nil
	case "^":
		return a ^ b, nil
	case "<<":
		if b < 0 {
			return nil, valueErrorf(pos, "negative shift count")
		}
		return a << uint(b), nil
	case ">>":
		if b < 0 {
			return nil, valueErrorf(pos, "negative shift count")
		}
		return a >> uint(b), nil
	}
	return nil, typeErrorf(pos, "unsupported int operator %q", op)
}

func (th *Thread) floatOp(op string, a, b float64, pos minipy.Position) (Value, error) {
	th.account()
	switch op {
	case "+":
		return a + b, nil
	case "-":
		return a - b, nil
	case "*":
		return a * b, nil
	case "/":
		if b == 0 {
			return nil, &PyError{Type: "ZeroDivisionError", Msg: "float division by zero", Pos: pos}
		}
		return a / b, nil
	case "//":
		if b == 0 {
			return nil, &PyError{Type: "ZeroDivisionError", Msg: "float floor division by zero", Pos: pos}
		}
		return math.Floor(a / b), nil
	case "%":
		if b == 0 {
			return nil, &PyError{Type: "ZeroDivisionError", Msg: "float modulo", Pos: pos}
		}
		m := math.Mod(a, b)
		if m != 0 && ((m < 0) != (b < 0)) {
			m += b
		}
		return m, nil
	case "**":
		return math.Pow(a, b), nil
	}
	return nil, typeErrorf(pos, "unsupported operand type(s) for %s: 'float' and 'float'", op)
}

func (th *Thread) unaryOp(op string, x Value, pos minipy.Position) (Value, error) {
	switch op {
	case "not":
		return !Truthy(x), nil
	case "-":
		if n, ok := x.(int64); ok {
			return -n, nil
		}
		if f, ok := x.(float64); ok {
			return -f, nil
		}
		if b, ok := x.(bool); ok {
			if b {
				return int64(-1), nil
			}
			return int64(0), nil
		}
	case "+":
		if n, ok := asInt(x); ok {
			if _, isB := x.(bool); isB {
				return n, nil
			}
			return x, nil
		}
		if _, ok := x.(float64); ok {
			return x, nil
		}
	case "~":
		if n, ok := asInt(x); ok {
			return ^n, nil
		}
	}
	return nil, typeErrorf(pos, "bad operand type for unary %s: '%s'", op, TypeName(x))
}

func (th *Thread) compareOp(op string, l, r Value, pos minipy.Position) (bool, error) {
	switch op {
	case "==":
		return valueEqual(l, r), nil
	case "!=":
		return !valueEqual(l, r), nil
	case "is":
		return valueIs(l, r), nil
	case "is not":
		return !valueIs(l, r), nil
	case "in":
		return th.contains(r, l, pos)
	case "not in":
		ok, err := th.contains(r, l, pos)
		return !ok, err
	}
	// Ordering comparisons.
	lf, lok := asFloat(l)
	rf, rok := asFloat(r)
	if lok && rok {
		switch op {
		case "<":
			return lf < rf, nil
		case "<=":
			return lf <= rf, nil
		case ">":
			return lf > rf, nil
		case ">=":
			return lf >= rf, nil
		}
	}
	if ls, ok := l.(string); ok {
		if rs, ok := r.(string); ok {
			switch op {
			case "<":
				return ls < rs, nil
			case "<=":
				return ls <= rs, nil
			case ">":
				return ls > rs, nil
			case ">=":
				return ls >= rs, nil
			}
		}
	}
	if lt, ok := l.(*Tuple); ok {
		if rtup, ok := r.(*Tuple); ok {
			c, err := tupleCompare(lt, rtup)
			if err != nil {
				return false, err
			}
			switch op {
			case "<":
				return c < 0, nil
			case "<=":
				return c <= 0, nil
			case ">":
				return c > 0, nil
			case ">=":
				return c >= 0, nil
			}
		}
	}
	return false, typeErrorf(pos, "'%s' not supported between instances of '%s' and '%s'",
		op, TypeName(l), TypeName(r))
}

func tupleCompare(a, b *Tuple) (int, error) {
	n := len(a.Elts)
	if len(b.Elts) < n {
		n = len(b.Elts)
	}
	for i := 0; i < n; i++ {
		if valueEqual(a.Elts[i], b.Elts[i]) {
			continue
		}
		less, err := valueLess(a.Elts[i], b.Elts[i])
		if err != nil {
			return 0, err
		}
		if less {
			return -1, nil
		}
		return 1, nil
	}
	switch {
	case len(a.Elts) < len(b.Elts):
		return -1, nil
	case len(a.Elts) > len(b.Elts):
		return 1, nil
	}
	return 0, nil
}

// valueLess is the universal ordering used by sort and min/max.
func valueLess(a, b Value) (bool, error) {
	af, aok := asFloat(a)
	bf, bok := asFloat(b)
	if aok && bok {
		return af < bf, nil
	}
	if as, ok := a.(string); ok {
		if bs, ok := b.(string); ok {
			return as < bs, nil
		}
	}
	if at, ok := a.(*Tuple); ok {
		if bt, ok := b.(*Tuple); ok {
			c, err := tupleCompare(at, bt)
			return c < 0, err
		}
	}
	return false, &PyError{Type: "TypeError",
		Msg: "'<' not supported between instances of '" + TypeName(a) + "' and '" + TypeName(b) + "'"}
}

// valueEqual implements Python ==.
func valueEqual(l, r Value) bool {
	lf, lok := asFloat(l)
	rf, rok := asFloat(r)
	if lok && rok {
		return lf == rf
	}
	switch a := l.(type) {
	case nil:
		return r == nil
	case string:
		b, ok := r.(string)
		return ok && a == b
	case *Tuple:
		b, ok := r.(*Tuple)
		if !ok || len(a.Elts) != len(b.Elts) {
			return false
		}
		for i := range a.Elts {
			if !valueEqual(a.Elts[i], b.Elts[i]) {
				return false
			}
		}
		return true
	case *List:
		b, ok := r.(*List)
		if !ok || a.Len() != b.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			if !valueEqual(a.Get(i), b.Get(i)) {
				return false
			}
		}
		return true
	case *Dict:
		b, ok := r.(*Dict)
		if !ok || a.Len() != b.Len() {
			return false
		}
		for _, kv := range a.Items() {
			v, found, err := b.Get(kv[0])
			if err != nil || !found || !valueEqual(kv[1], v) {
				return false
			}
		}
		return true
	case *Set:
		b, ok := r.(*Set)
		if !ok || a.Len() != b.Len() {
			return false
		}
		for _, v := range a.Values() {
			has, err := b.Has(v)
			if err != nil || !has {
				return false
			}
		}
		return true
	case *ExcValue:
		b, ok := r.(*ExcValue)
		return ok && a.Type == b.Type && valueEqual(a.Msg, b.Msg)
	}
	return l == r && l != nil
}

func valueIs(l, r Value) bool {
	if l == nil || r == nil {
		return l == nil && r == nil
	}
	switch l.(type) {
	case bool, int64, float64, string:
		// CPython small-value identity is an implementation detail;
		// scalar "is" compares values here.
		return valueEqual(l, r) && TypeName(l) == TypeName(r)
	}
	return l == r
}

func (th *Thread) contains(container, item Value, pos minipy.Position) (bool, error) {
	switch c := container.(type) {
	case *List:
		for i := 0; i < c.Len(); i++ {
			if valueEqual(c.Get(i), item) {
				return true, nil
			}
		}
		return false, nil
	case *Tuple:
		for _, v := range c.Elts {
			if valueEqual(v, item) {
				return true, nil
			}
		}
		return false, nil
	case *Dict:
		_, ok, err := c.Get(item)
		return ok, err
	case *Set:
		return c.Has(item)
	case string:
		s, ok := item.(string)
		if !ok {
			return false, typeErrorf(pos, "'in <string>' requires string as left operand")
		}
		return strings.Contains(c, s), nil
	case *Range:
		n, ok := asInt(item)
		if !ok {
			return false, nil
		}
		if c.Step > 0 {
			return n >= c.Start && n < c.Stop && (n-c.Start)%c.Step == 0, nil
		}
		if c.Step < 0 {
			return n <= c.Start && n > c.Stop && (c.Start-n)%(-c.Step) == 0, nil
		}
		return false, nil
	}
	return false, typeErrorf(pos, "argument of type '%s' is not iterable", TypeName(container))
}

// pyFormat supports the small %-formatting subset benchmarks use.
func pyFormat(format string, arg Value) string {
	args := []Value{arg}
	if t, ok := arg.(*Tuple); ok {
		args = t.Elts
	}
	var b strings.Builder
	ai := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' || i+1 >= len(format) {
			b.WriteByte(format[i])
			continue
		}
		i++
		switch format[i] {
		case '%':
			b.WriteByte('%')
		case 's', 'd', 'f', 'g':
			if ai < len(args) {
				b.WriteString(Str(args[ai]))
				ai++
			}
		default:
			b.WriteByte('%')
			b.WriteByte(format[i])
		}
	}
	return b.String()
}
