package interp

import (
	"errors"
	"io"
	"testing"
	"time"

	"github.com/omp4go/omp4go/internal/rt"
)

func budgetInterp() *Interp {
	return New(Options{Stdout: io.Discard, Layer: rt.LayerAtomic,
		Getenv: func(string) string { return "" }})
}

// TestBudgetKillsInfiniteLoop is the regression the serving layer
// depends on: an infinite while loop is terminated by the step budget
// with a typed error carrying a source position, instead of hanging
// the calling goroutine forever.
func TestBudgetKillsInfiniteLoop(t *testing.T) {
	in := budgetInterp()
	in.SetBudget(Budget{MaxSteps: 200_000})
	done := make(chan error, 1)
	go func() { done <- in.RunSource("while True:\n    pass\n", "spin.py") }()
	var err error
	select {
	case err = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("step budget did not terminate the infinite loop")
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error = %v (%T), want *BudgetError", err, err)
	}
	if be.Kind != "steps" {
		t.Errorf("Kind = %q, want \"steps\"", be.Kind)
	}
	if be.Pos.Line == 0 {
		t.Errorf("budget error carries no source position: %v", be)
	}
	if got := in.BudgetSteps(); got < 200_000 {
		t.Errorf("BudgetSteps() = %d, want >= the %d limit", got, 200_000)
	}
}

// TestBudgetUncatchable: a tenant program cannot swallow its own kill
// with a bare except and keep looping — BudgetError is not a PyError,
// so except clauses never match it.
func TestBudgetUncatchable(t *testing.T) {
	in := budgetInterp()
	in.SetBudget(Budget{MaxSteps: 100_000})
	src := "while True:\n" +
		"    try:\n" +
		"        x = 1\n" +
		"    except Exception:\n" +
		"        pass\n"
	done := make(chan error, 1)
	go func() { done <- in.RunSource(src, "catcher.py") }()
	var err error
	select {
	case err = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("except Exception swallowed the budget kill")
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error = %v (%T), want *BudgetError", err, err)
	}
}

func TestBudgetDeadline(t *testing.T) {
	in := budgetInterp()
	in.SetBudget(Budget{Deadline: time.Now().Add(50 * time.Millisecond)})
	err := in.RunSource("i = 0\nwhile True:\n    i = i + 1\n", "spin.py")
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error = %v (%T), want *BudgetError", err, err)
	}
	if be.Kind != "deadline" {
		t.Errorf("Kind = %q, want \"deadline\"", be.Kind)
	}
}

func TestBudgetCancel(t *testing.T) {
	in := budgetInterp()
	cancel := make(chan struct{})
	in.SetBudget(Budget{Done: cancel})
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(cancel)
	}()
	err := in.RunSource("i = 0\nwhile True:\n    i = i + 1\n", "spin.py")
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error = %v (%T), want *BudgetError", err, err)
	}
	if be.Kind != "canceled" {
		t.Errorf("Kind = %q, want \"canceled\"", be.Kind)
	}
}

func TestBudgetAllocs(t *testing.T) {
	in := budgetInterp()
	in.SetBudget(Budget{MaxAllocs: 10_000})
	err := in.RunSource("i = 0\nwhile True:\n    i = i + 1\n", "alloc.py")
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error = %v (%T), want *BudgetError", err, err)
	}
	if be.Kind != "allocs" {
		t.Errorf("Kind = %q, want \"allocs\"", be.Kind)
	}
	if got := in.BudgetAllocs(); got <= 10_000 {
		t.Errorf("BudgetAllocs() = %d, want > the %d limit", got, 10_000)
	}
}

// TestBudgetClearAndRearm: a budget bounds one run; clearing it (or
// arming a fresh one) lets the next run proceed from zero.
func TestBudgetClearAndRearm(t *testing.T) {
	in := budgetInterp()
	in.SetBudget(Budget{MaxSteps: 1_000})
	if err := in.RunSource("i = 0\nwhile i < 100000:\n    i = i + 1\n", "a.py"); err == nil {
		t.Fatal("tight budget did not kill the loop")
	}
	// A sticky kill must not leak into the next run.
	in.SetBudget(Budget{MaxSteps: 10_000_000})
	if err := in.RunSource("i = 0\nwhile i < 1000:\n    i = i + 1\nprint(i)", "b.py"); err != nil {
		t.Fatalf("fresh budget still killed: %v", err)
	}
	in.ClearBudget()
	if err := in.RunSource("j = 0\nwhile j < 1000:\n    j = j + 1\n", "c.py"); err != nil {
		t.Fatalf("cleared budget still killed: %v", err)
	}
}

// TestBudgetKillsParallelRegion: the budget spans every thread of a
// team — a parallel region burning steps on all members is killed and
// the error propagates out of the region join.
func TestBudgetKillsParallelRegion(t *testing.T) {
	in := budgetInterp()
	in.SetBudget(Budget{MaxSteps: 500_000})
	src := "from omp4py import *\n" +
		"def body():\n" +
		"    i = 0\n" +
		"    while True:\n" +
		"        i = i + 1\n" +
		"__omp.parallel_run(body, 2, False, False)\n"
	done := make(chan error, 1)
	go func() { done <- in.RunSource(src, "spin_par.py") }()
	var err error
	select {
	case err = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("budget did not terminate the parallel region")
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error = %v (%T), want *BudgetError", err, err)
	}
}
