package interp

import (
	"math"
	"strconv"
	"strings"

	"github.com/omp4go/omp4go/internal/minipy"
)

func (in *Interp) installBuiltins() {
	reg := func(name string, fn func(th *Thread, args []Value) (Value, error)) {
		in.globals.DefineValue(name, &Builtin{Name: name, Fn: fn})
	}
	regKw := func(name string,
		fn func(th *Thread, args []Value) (Value, error),
		fnKw func(th *Thread, args []Value, kwargs map[string]Value) (Value, error)) {
		in.globals.DefineValue(name, &Builtin{Name: name, Fn: fn, FnKw: fnKw})
	}

	reg("range", func(th *Thread, args []Value) (Value, error) {
		var start, stop, step int64 = 0, 0, 1
		switch len(args) {
		case 1:
			v, ok := asInt(args[0])
			if !ok {
				return nil, typeErrorf(minipy.Position{}, "range() argument must be int")
			}
			stop = v
		case 2, 3:
			v0, ok0 := asInt(args[0])
			v1, ok1 := asInt(args[1])
			if !ok0 || !ok1 {
				return nil, typeErrorf(minipy.Position{}, "range() arguments must be ints")
			}
			start, stop = v0, v1
			if len(args) == 3 {
				v2, ok := asInt(args[2])
				if !ok {
					return nil, typeErrorf(minipy.Position{}, "range() arguments must be ints")
				}
				if v2 == 0 {
					return nil, valueErrorf(minipy.Position{}, "range() arg 3 must not be zero")
				}
				step = v2
			}
		default:
			return nil, typeErrorf(minipy.Position{}, "range expected 1 to 3 arguments, got %d", len(args))
		}
		return &Range{Start: start, Stop: stop, Step: step}, nil
	})

	reg("len", func(th *Thread, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, typeErrorf(minipy.Position{}, "len() takes exactly one argument")
		}
		switch c := args[0].(type) {
		case *List:
			return int64(c.Len()), nil
		case *Tuple:
			return int64(len(c.Elts)), nil
		case *Dict:
			return int64(c.Len()), nil
		case *Set:
			return int64(c.Len()), nil
		case string:
			return int64(len(c)), nil
		case *Range:
			return c.Len(), nil
		}
		return nil, typeErrorf(minipy.Position{}, "object of type '%s' has no len()", TypeName(args[0]))
	})

	regKw("print",
		func(th *Thread, args []Value) (Value, error) {
			return printImpl(th, args, nil)
		},
		printImpl)

	reg("abs", func(th *Thread, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, typeErrorf(minipy.Position{}, "abs() takes exactly one argument")
		}
		switch v := args[0].(type) {
		case int64:
			if v < 0 {
				return -v, nil
			}
			return v, nil
		case float64:
			return math.Abs(v), nil
		case bool:
			n, _ := asInt(v)
			return n, nil
		}
		return nil, typeErrorf(minipy.Position{}, "bad operand type for abs(): '%s'", TypeName(args[0]))
	})

	reg("min", func(th *Thread, args []Value) (Value, error) { return minMax(th, args, true) })
	reg("max", func(th *Thread, args []Value) (Value, error) { return minMax(th, args, false) })

	reg("sum", func(th *Thread, args []Value) (Value, error) {
		if len(args) < 1 || len(args) > 2 {
			return nil, typeErrorf(minipy.Position{}, "sum() takes 1 or 2 arguments")
		}
		var acc Value = int64(0)
		if len(args) == 2 {
			acc = args[1]
		}
		vals, err := iterValues(args[0])
		if err != nil {
			return nil, err
		}
		for _, v := range vals {
			acc, err = th.binaryOp("+", acc, v, minipy.Position{})
			if err != nil {
				return nil, err
			}
		}
		return acc, nil
	})

	reg("int", func(th *Thread, args []Value) (Value, error) {
		if len(args) == 0 {
			return int64(0), nil
		}
		switch v := args[0].(type) {
		case int64:
			return v, nil
		case float64:
			return int64(math.Trunc(v)), nil
		case bool:
			n, _ := asInt(v)
			return n, nil
		case string:
			s := strings.TrimSpace(v)
			var n int64
			var neg bool
			i := 0
			if i < len(s) && (s[i] == '-' || s[i] == '+') {
				neg = s[i] == '-'
				i++
			}
			if i >= len(s) {
				return nil, valueErrorf(minipy.Position{}, "invalid literal for int(): %q", v)
			}
			for ; i < len(s); i++ {
				if s[i] < '0' || s[i] > '9' {
					return nil, valueErrorf(minipy.Position{}, "invalid literal for int(): %q", v)
				}
				n = n*10 + int64(s[i]-'0')
			}
			if neg {
				n = -n
			}
			return n, nil
		}
		return nil, typeErrorf(minipy.Position{}, "int() argument must be a number or string")
	})

	reg("float", func(th *Thread, args []Value) (Value, error) {
		if len(args) == 0 {
			return float64(0), nil
		}
		if f, ok := asFloat(args[0]); ok {
			return f, nil
		}
		if s, ok := args[0].(string); ok {
			var f float64
			var err error
			f, err = parseFloatPy(s)
			if err != nil {
				return nil, valueErrorf(minipy.Position{}, "could not convert string to float: %q", s)
			}
			return f, nil
		}
		return nil, typeErrorf(minipy.Position{}, "float() argument must be a number or string")
	})

	reg("str", func(th *Thread, args []Value) (Value, error) {
		if len(args) == 0 {
			return "", nil
		}
		return Str(args[0]), nil
	})

	reg("repr", func(th *Thread, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, typeErrorf(minipy.Position{}, "repr() takes exactly one argument")
		}
		return Repr(args[0]), nil
	})

	reg("bool", func(th *Thread, args []Value) (Value, error) {
		if len(args) == 0 {
			return false, nil
		}
		return Truthy(args[0]), nil
	})

	reg("list", func(th *Thread, args []Value) (Value, error) {
		if len(args) == 0 {
			return &List{}, nil
		}
		vals, err := iterValues(args[0])
		if err != nil {
			return nil, err
		}
		return NewList(vals), nil
	})

	reg("tuple", func(th *Thread, args []Value) (Value, error) {
		if len(args) == 0 {
			return &Tuple{}, nil
		}
		vals, err := iterValues(args[0])
		if err != nil {
			return nil, err
		}
		return &Tuple{Elts: vals}, nil
	})

	reg("dict", func(th *Thread, args []Value) (Value, error) {
		d := NewDict()
		if len(args) == 1 {
			if src, ok := args[0].(*Dict); ok {
				for _, kv := range src.Items() {
					if err := d.Set(kv[0], kv[1]); err != nil {
						return nil, err
					}
				}
			}
		}
		return d, nil
	})

	reg("set", func(th *Thread, args []Value) (Value, error) {
		s := NewSet()
		if len(args) == 1 {
			vals, err := iterValues(args[0])
			if err != nil {
				return nil, err
			}
			for _, v := range vals {
				if err := s.Add(v); err != nil {
					return nil, err
				}
			}
		}
		return s, nil
	})

	regKw("sorted",
		func(th *Thread, args []Value) (Value, error) { return sortedImpl(th, args, nil) },
		sortedImpl)

	reg("round", func(th *Thread, args []Value) (Value, error) {
		if len(args) < 1 || len(args) > 2 {
			return nil, typeErrorf(minipy.Position{}, "round() takes 1 or 2 arguments")
		}
		f, ok := asFloat(args[0])
		if !ok {
			return nil, typeErrorf(minipy.Position{}, "round() argument must be a number")
		}
		if len(args) == 2 {
			nd, ok := asInt(args[1])
			if !ok {
				return nil, typeErrorf(minipy.Position{}, "ndigits must be int")
			}
			scale := math.Pow(10, float64(nd))
			return math.RoundToEven(f*scale) / scale, nil
		}
		if _, isInt := args[0].(int64); isInt {
			return args[0], nil
		}
		return int64(math.RoundToEven(f)), nil
	})

	reg("isinstance", func(th *Thread, args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, typeErrorf(minipy.Position{}, "isinstance() takes 2 arguments")
		}
		checkOne := func(t Value) bool {
			b, ok := t.(*Builtin)
			if !ok {
				return false
			}
			switch b.Name {
			case "int":
				_, ok := args[0].(int64)
				return ok
			case "float":
				_, ok := args[0].(float64)
				return ok
			case "str":
				_, ok := args[0].(string)
				return ok
			case "bool":
				_, ok := args[0].(bool)
				return ok
			case "list":
				_, ok := args[0].(*List)
				return ok
			case "dict":
				_, ok := args[0].(*Dict)
				return ok
			case "set":
				_, ok := args[0].(*Set)
				return ok
			case "tuple":
				_, ok := args[0].(*Tuple)
				return ok
			}
			return false
		}
		if t, ok := args[1].(*Tuple); ok {
			for _, el := range t.Elts {
				if checkOne(el) {
					return true, nil
				}
			}
			return false, nil
		}
		return checkOne(args[1]), nil
	})

	reg("type", func(th *Thread, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, typeErrorf(minipy.Position{}, "type() takes exactly one argument")
		}
		return "<class '" + TypeName(args[0]) + "'>", nil
	})

	reg("id", func(th *Thread, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, typeErrorf(minipy.Position{}, "id() takes exactly one argument")
		}
		return objectID(args[0]), nil
	})

	reg("ord", func(th *Thread, args []Value) (Value, error) {
		s, ok := args[0].(string)
		if !ok || len(s) == 0 {
			return nil, typeErrorf(minipy.Position{}, "ord() expected a character")
		}
		r := []rune(s)
		if len(r) != 1 {
			return nil, typeErrorf(minipy.Position{}, "ord() expected a character, got string of length %d", len(r))
		}
		return int64(r[0]), nil
	})

	reg("chr", func(th *Thread, args []Value) (Value, error) {
		n, ok := asInt(args[0])
		if !ok {
			return nil, typeErrorf(minipy.Position{}, "an integer is required")
		}
		return string(rune(n)), nil
	})

	reg("enumerate", func(th *Thread, args []Value) (Value, error) {
		if len(args) < 1 || len(args) > 2 {
			return nil, typeErrorf(minipy.Position{}, "enumerate() takes 1 or 2 arguments")
		}
		start := int64(0)
		if len(args) == 2 {
			v, ok := asInt(args[1])
			if !ok {
				return nil, typeErrorf(minipy.Position{}, "enumerate() start must be int")
			}
			start = v
		}
		vals, err := iterValues(args[0])
		if err != nil {
			return nil, err
		}
		out := make([]Value, len(vals))
		for i, v := range vals {
			out[i] = &Tuple{Elts: []Value{start + int64(i), v}}
		}
		return NewList(out), nil
	})

	reg("zip", func(th *Thread, args []Value) (Value, error) {
		lists := make([][]Value, len(args))
		n := -1
		for i, a := range args {
			vals, err := iterValues(a)
			if err != nil {
				return nil, err
			}
			lists[i] = vals
			if n < 0 || len(vals) < n {
				n = len(vals)
			}
		}
		if n < 0 {
			n = 0
		}
		out := make([]Value, n)
		for i := 0; i < n; i++ {
			row := make([]Value, len(lists))
			for j := range lists {
				row[j] = lists[j][i]
			}
			out[i] = &Tuple{Elts: row}
		}
		return NewList(out), nil
	})

	// Exception constructors.
	for _, name := range []string{
		"Exception", "ValueError", "TypeError", "IndexError", "KeyError",
		"ZeroDivisionError", "RuntimeError", "NameError", "AssertionError",
		"StopIteration", "ArithmeticError", "LookupError", "NotImplementedError",
	} {
		excName := name
		reg(excName, func(th *Thread, args []Value) (Value, error) {
			var msg Value = ""
			if len(args) == 1 {
				msg = args[0]
			} else if len(args) > 1 {
				msg = &Tuple{Elts: args}
			}
			return &ExcValue{Type: excName, Msg: msg}, nil
		})
	}
}

func printImpl(th *Thread, args []Value, kwargs map[string]Value) (Value, error) {
	sep, end := " ", "\n"
	if kwargs != nil {
		if v, ok := kwargs["sep"]; ok {
			s, ok := v.(string)
			if !ok {
				return nil, typeErrorf(minipy.Position{}, "sep must be a string")
			}
			sep = s
		}
		if v, ok := kwargs["end"]; ok {
			s, ok := v.(string)
			if !ok {
				return nil, typeErrorf(minipy.Position{}, "end must be a string")
			}
			end = s
		}
	}
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = Str(a)
	}
	th.in.printTo(strings.Join(parts, sep) + end)
	return nil, nil
}

func sortedImpl(th *Thread, args []Value, kwargs map[string]Value) (Value, error) {
	if len(args) != 1 {
		return nil, typeErrorf(minipy.Position{}, "sorted() takes one positional argument")
	}
	vals, err := iterValues(args[0])
	if err != nil {
		return nil, err
	}
	reverse := false
	var keyFn Value
	if kwargs != nil {
		if v, ok := kwargs["reverse"]; ok {
			reverse = Truthy(v)
		}
		if v, ok := kwargs["key"]; ok {
			keyFn = v
		}
	}
	keys := vals
	if keyFn != nil {
		keys = make([]Value, len(vals))
		for i, v := range vals {
			k, err := th.Call(keyFn, []Value{v}, minipy.Position{})
			if err != nil {
				return nil, err
			}
			keys[i] = k
		}
	}
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	var sortErr error
	stableSort(idx, func(a, b int) bool {
		less, err := valueLess(keys[a], keys[b])
		if err != nil && sortErr == nil {
			sortErr = err
		}
		if reverse {
			gt, err := valueLess(keys[b], keys[a])
			if err != nil && sortErr == nil {
				sortErr = err
			}
			return gt
		}
		return less
	})
	if sortErr != nil {
		return nil, sortErr
	}
	out := make([]Value, len(vals))
	for i, j := range idx {
		out[i] = vals[j]
	}
	return NewList(out), nil
}

func stableSort(idx []int, less func(a, b int) bool) {
	// Insertion sort keeps it simple and stable; sorted() inputs in
	// the benchmarks are modest.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && less(idx[j], idx[j-1]); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}

func minMax(th *Thread, args []Value, wantMin bool) (Value, error) {
	var vals []Value
	if len(args) == 1 {
		var err error
		vals, err = iterValues(args[0])
		if err != nil {
			return nil, err
		}
	} else {
		vals = args
	}
	if len(vals) == 0 {
		return nil, valueErrorf(minipy.Position{}, "min()/max() arg is an empty sequence")
	}
	best := vals[0]
	for _, v := range vals[1:] {
		less, err := valueLess(v, best)
		if err != nil {
			return nil, err
		}
		if less == wantMin {
			best = v
		}
	}
	return best, nil
}

// iterValues materializes an iterable into a slice.
func iterValues(v Value) ([]Value, error) {
	switch c := v.(type) {
	case *List:
		return c.Values(), nil
	case *Tuple:
		return append([]Value(nil), c.Elts...), nil
	case *Set:
		return c.Values(), nil
	case *Dict:
		items := c.Items()
		out := make([]Value, len(items))
		for i, kv := range items {
			out[i] = kv[0]
		}
		return out, nil
	case *Range:
		out := make([]Value, 0, c.Len())
		if c.Step > 0 {
			for i := c.Start; i < c.Stop; i += c.Step {
				out = append(out, i)
			}
		} else if c.Step < 0 {
			for i := c.Start; i > c.Stop; i += c.Step {
				out = append(out, i)
			}
		}
		return out, nil
	case string:
		out := make([]Value, 0, len(c))
		for _, r := range c {
			out = append(out, string(r))
		}
		return out, nil
	}
	return nil, &PyError{Type: "TypeError", Msg: "'" + TypeName(v) + "' object is not iterable"}
}

var objectIDs = newIDTable()

type idTable struct {
	mu   chan struct{}
	ids  map[any]int64
	next int64
}

func newIDTable() *idTable {
	t := &idTable{mu: make(chan struct{}, 1), ids: make(map[any]int64), next: 1}
	t.mu <- struct{}{}
	return t
}

// objectID returns a stable identity for reference values (the id()
// builtin, which §V discusses for task dependencies).
func objectID(v Value) int64 {
	switch v.(type) {
	case *List, *Dict, *Set, *Tuple, *Function, *Builtin, *Module:
		<-objectIDs.mu
		defer func() { objectIDs.mu <- struct{}{} }()
		if id, ok := objectIDs.ids[v]; ok {
			return id
		}
		id := objectIDs.next
		objectIDs.next++
		objectIDs.ids[v] = id
		return id
	}
	// Scalars: identity follows value, as CPython interning would.
	k, err := hashKey(v)
	if err != nil {
		return -1
	}
	<-objectIDs.mu
	defer func() { objectIDs.mu <- struct{}{} }()
	if id, ok := objectIDs.ids[k]; ok {
		return id
	}
	id := objectIDs.next
	objectIDs.next++
	objectIDs.ids[k] = id
	return id
}

func parseFloatPy(s string) (float64, error) {
	s = strings.TrimSpace(s)
	switch strings.ToLower(s) {
	case "inf", "+inf", "infinity":
		return math.Inf(1), nil
	case "-inf", "-infinity":
		return math.Inf(-1), nil
	case "nan":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}
