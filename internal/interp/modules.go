package interp

import (
	"math"
	"sync"
	"time"

	"github.com/omp4go/omp4go/internal/minipy"
)

func (in *Interp) installModules() {
	in.modules["math"] = in.mathModule()
	in.modules["time"] = in.timeModule()
	in.modules["random"] = in.randomModule()
	in.modules["sys"] = in.sysModule()
	in.installOmpModule()
}

// RegisterModule installs an extra builtin module (the bench package
// exposes graph and corpus substrates this way, playing the role of
// NetworkX and file I/O in the paper's non-numerical benchmarks).
func (in *Interp) RegisterModule(m *Module) { in.modules[m.Name] = m }

func mathFn1(name string, fn func(float64) float64) (string, Value) {
	return name, &Builtin{Name: name, Fn: func(th *Thread, args []Value) (Value, error) {
		if len(args) != 1 {
			return nil, typeErrorf(minipy.Position{}, "%s() takes exactly one argument", name)
		}
		f, ok := asFloat(args[0])
		if !ok {
			return nil, typeErrorf(minipy.Position{}, "must be real number, not %s", TypeName(args[0]))
		}
		r := fn(f)
		if math.IsNaN(r) && !math.IsNaN(f) {
			return nil, valueErrorf(minipy.Position{}, "math domain error")
		}
		return r, nil
	}}
}

func (in *Interp) mathModule() *Module {
	attrs := map[string]Value{
		"pi":  math.Pi,
		"e":   math.E,
		"inf": math.Inf(1),
		"nan": math.NaN(),
		"tau": 2 * math.Pi,
	}
	put := func(name string, v Value) { attrs[name] = v }
	put(mathFn1("sqrt", math.Sqrt))
	put(mathFn1("sin", math.Sin))
	put(mathFn1("cos", math.Cos))
	put(mathFn1("tan", math.Tan))
	put(mathFn1("asin", math.Asin))
	put(mathFn1("acos", math.Acos))
	put(mathFn1("atan", math.Atan))
	put(mathFn1("exp", math.Exp))
	put(mathFn1("log", math.Log))
	put(mathFn1("log2", math.Log2))
	put(mathFn1("log10", math.Log10))
	put(mathFn1("fabs", math.Abs))
	attrs["floor"] = &Builtin{Name: "floor", Fn: func(th *Thread, args []Value) (Value, error) {
		f, ok := asFloat(args[0])
		if !ok {
			return nil, typeErrorf(minipy.Position{}, "must be real number")
		}
		return int64(math.Floor(f)), nil
	}}
	attrs["ceil"] = &Builtin{Name: "ceil", Fn: func(th *Thread, args []Value) (Value, error) {
		f, ok := asFloat(args[0])
		if !ok {
			return nil, typeErrorf(minipy.Position{}, "must be real number")
		}
		return int64(math.Ceil(f)), nil
	}}
	attrs["pow"] = &Builtin{Name: "pow", Fn: func(th *Thread, args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, typeErrorf(minipy.Position{}, "pow() takes exactly two arguments")
		}
		a, ok1 := asFloat(args[0])
		b, ok2 := asFloat(args[1])
		if !ok1 || !ok2 {
			return nil, typeErrorf(minipy.Position{}, "must be real numbers")
		}
		return math.Pow(a, b), nil
	}}
	attrs["atan2"] = &Builtin{Name: "atan2", Fn: func(th *Thread, args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, typeErrorf(minipy.Position{}, "atan2() takes exactly two arguments")
		}
		a, ok1 := asFloat(args[0])
		b, ok2 := asFloat(args[1])
		if !ok1 || !ok2 {
			return nil, typeErrorf(minipy.Position{}, "must be real numbers")
		}
		return math.Atan2(a, b), nil
	}}
	attrs["fmod"] = &Builtin{Name: "fmod", Fn: func(th *Thread, args []Value) (Value, error) {
		if len(args) != 2 {
			return nil, typeErrorf(minipy.Position{}, "fmod() takes exactly two arguments")
		}
		a, ok1 := asFloat(args[0])
		b, ok2 := asFloat(args[1])
		if !ok1 || !ok2 {
			return nil, typeErrorf(minipy.Position{}, "must be real numbers")
		}
		return math.Mod(a, b), nil
	}}
	attrs["isnan"] = &Builtin{Name: "isnan", Fn: func(th *Thread, args []Value) (Value, error) {
		f, ok := asFloat(args[0])
		if !ok {
			return nil, typeErrorf(minipy.Position{}, "must be real number")
		}
		return math.IsNaN(f), nil
	}}
	attrs["isinf"] = &Builtin{Name: "isinf", Fn: func(th *Thread, args []Value) (Value, error) {
		f, ok := asFloat(args[0])
		if !ok {
			return nil, typeErrorf(minipy.Position{}, "must be real number")
		}
		return math.IsInf(f, 0), nil
	}}
	return &Module{Name: "math", Attrs: attrs}
}

func (in *Interp) timeModule() *Module {
	epoch := time.Now()
	return &Module{Name: "time", Attrs: map[string]Value{
		"time": &Builtin{Name: "time", Fn: func(th *Thread, args []Value) (Value, error) {
			return float64(time.Now().UnixNano()) / 1e9, nil
		}},
		"perf_counter": &Builtin{Name: "perf_counter", Fn: func(th *Thread, args []Value) (Value, error) {
			return time.Since(epoch).Seconds(), nil
		}},
		"sleep": &Builtin{Name: "sleep", ReleasesGIL: true,
			Fn: func(th *Thread, args []Value) (Value, error) {
				f, ok := asFloat(args[0])
				if !ok || f < 0 {
					return nil, valueErrorf(minipy.Position{}, "sleep length must be non-negative")
				}
				time.Sleep(time.Duration(f * float64(time.Second)))
				return nil, nil
			}},
	}}
}

// randomModule is a deterministic xorshift-based stand-in for
// CPython's Mersenne Twister; the artifact's data sets are "synthetic
// data generated from a fixed seed".
func (in *Interp) randomModule() *Module {
	var mu sync.Mutex
	state := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		mu.Lock()
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		v := state
		mu.Unlock()
		return v
	}
	return &Module{Name: "random", Attrs: map[string]Value{
		"seed": &Builtin{Name: "seed", Fn: func(th *Thread, args []Value) (Value, error) {
			n := int64(0)
			if len(args) == 1 {
				v, ok := asInt(args[0])
				if !ok {
					return nil, typeErrorf(minipy.Position{}, "seed must be int")
				}
				n = v
			}
			mu.Lock()
			state = uint64(n)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
			if state == 0 {
				state = 1
			}
			mu.Unlock()
			return nil, nil
		}},
		"random": &Builtin{Name: "random", Fn: func(th *Thread, args []Value) (Value, error) {
			return float64(next()>>11) / float64(1<<53), nil
		}},
		"randint": &Builtin{Name: "randint", Fn: func(th *Thread, args []Value) (Value, error) {
			if len(args) != 2 {
				return nil, typeErrorf(minipy.Position{}, "randint() takes two arguments")
			}
			a, ok1 := asInt(args[0])
			b, ok2 := asInt(args[1])
			if !ok1 || !ok2 || b < a {
				return nil, valueErrorf(minipy.Position{}, "invalid randint bounds")
			}
			return a + int64(next()%uint64(b-a+1)), nil
		}},
		"uniform": &Builtin{Name: "uniform", Fn: func(th *Thread, args []Value) (Value, error) {
			if len(args) != 2 {
				return nil, typeErrorf(minipy.Position{}, "uniform() takes two arguments")
			}
			a, ok1 := asFloat(args[0])
			b, ok2 := asFloat(args[1])
			if !ok1 || !ok2 {
				return nil, typeErrorf(minipy.Position{}, "uniform bounds must be numbers")
			}
			f := float64(next()>>11) / float64(1<<53)
			return a + f*(b-a), nil
		}},
		"shuffle": &Builtin{Name: "shuffle", Fn: func(th *Thread, args []Value) (Value, error) {
			l, ok := args[0].(*List)
			if !ok {
				return nil, typeErrorf(minipy.Position{}, "shuffle() argument must be list")
			}
			n := l.Len()
			for i := n - 1; i > 0; i-- {
				j := int(next() % uint64(i+1))
				a, b := l.Get(i), l.Get(j)
				l.Set(i, b)
				l.Set(j, a)
			}
			return nil, nil
		}},
	}}
}

func (in *Interp) sysModule() *Module {
	return &Module{Name: "sys", Attrs: map[string]Value{
		"maxsize": int64(^uint64(0) >> 1),
		"version": "minipy 1.0 (omp4go reproduction of OMP4Py)",
	}}
}
