package interp

import (
	"strings"
	"testing"
)

func TestMoreListMethods(t *testing.T) {
	expectOut(t, `
l = [1, 2]
l.extend([3, 4])
l.insert(0, 0)
l.insert(-1, 9)
print(l)
c = l.copy()
c.append(5)
print(len(l), len(c))
l.clear()
print(l)
`, "[0, 1, 2, 3, 9, 4]\n6 7\n[]\n")
	runErr(t, "[].pop()", "IndexError")
	runErr(t, "[1].index(9)", "ValueError")
	runErr(t, "[1].pop(\"x\")", "TypeError")
}

func TestMoreDictMethods(t *testing.T) {
	expectOut(t, `
d = {"a": 1}
print(d.setdefault("a", 99), d.setdefault("b", 2))
print(sorted(d.items()))
e = d.copy()
e["c"] = 3
print(len(d), len(e))
d.clear()
print(len(d), e.values())
`, "1 2\n[('a', 1), ('b', 2)]\n2 3\n0 [1, 2, 3]\n")
	runErr(t, "d = {}\nd.update([1])", "TypeError")
}

func TestMoreSetMethods(t *testing.T) {
	expectOut(t, `
a = {1, 2, 3}
b = {2, 3, 4}
u = a.union(b)
i = a.intersection(b)
print(len(u), sorted(i.union()))
a.discard(99)
a.discard(1)
print(sorted(a.union()))
`, "4 [2, 3]\n[2, 3]\n")
	runErr(t, "s = {1}\ns.remove(9)", "KeyError")
}

func TestMoreStringMethods(t *testing.T) {
	expectOut(t, `
print("a-b-c".split("-"))
print("  pad  ".strip(), "xxhixx".strip("x"))
print("hello".find("ll"), "hello".find("z"))
print("aaa".count("a"), "aaa".count("aa"))
`, "['a', 'b', 'c']\npad hi\n2 -1\n3 1\n")
	runErr(t, `"a,b".split("")`, "empty separator")
	runErr(t, `"-".join([1, 2])`, "expected str")
}

func TestMoreMathFunctions(t *testing.T) {
	expectOut(t, `
import math
print(math.log2(8.0), math.log10(100.0))
print(math.atan2(0.0, 1.0), math.fmod(7.5, 2.0))
print(math.isnan(math.nan), math.isinf(math.inf), math.isnan(1.0))
print(math.tan(0.0), math.asin(0.0), math.acos(1.0), math.atan(0.0))
print(math.e > 2.7 and math.e < 2.8, math.tau > 6.28)
`, "3.0 2.0\n0.0 1.5\nTrue True False\n0.0 0.0 0.0 0.0\nTrue True\n")
	runErr(t, "import math\nmath.log(0.0) if False else math.sqrt(-4.0)", "math domain error")
}

func TestMoreRandomFunctions(t *testing.T) {
	expectOut(t, `
import random
random.seed(7)
u = random.uniform(10.0, 20.0)
print(u >= 10.0 and u <= 20.0)
l = [1, 2, 3, 4, 5]
random.shuffle(l)
print(sorted(l))
`, "True\n[1, 2, 3, 4, 5]\n")
	runErr(t, "import random\nrandom.randint(5, 1)", "ValueError")
}

func TestSysModule(t *testing.T) {
	expectOut(t, `
import sys
print(sys.maxsize > 10 ** 18)
print("minipy" in sys.version)
`, "True\nTrue\n")
}

func TestTupleAndSliceEdges(t *testing.T) {
	expectOut(t, `
t = (10, 20, 30, 40)
print(t[1:3], t[::-1], t[-1])
print("abcdef"[::2], "abcdef"[4:1:-1])
print(len(()), (1,) + (2,))
`, "(20, 30) (40, 30, 20, 10) 40\nace edc\n0 (1, 2)\n")
	runErr(t, "t = (1, 2)\nprint(t[5])", "IndexError")
	runErr(t, "x = [1][0:2:0]", "ValueError")
}

func TestRangeEdges(t *testing.T) {
	expectOut(t, `
print(len(range(10)), len(range(10, 0)), len(range(0, 10, 3)))
print(len(range(10, 0, -3)), list(range(3, -3, -2)))
print(range(2, 8))
`, "10 0 4\n4 [3, 1, -1]\nrange(2, 8)\n")
	runErr(t, "range(1, 2, 0)", "ValueError")
	runErr(t, "range()", "TypeError")
}

func TestReprForms(t *testing.T) {
	expectOut(t, `
print(repr("it's"), repr(1.0), repr(True), repr(None))
print(repr([1, (2,), {3: "x"}]))
print(repr(set()))
s = {9}
print(repr(s))
`, "'it\\'s' 1.0 True None\n[1, (2,), {3: 'x'}]\nset()\n{9}\n")
	expectOut(t, `print(str(print)[0:10] != "")`, "True\n")
}

func TestOmpRuntimeAPIInsideParallel(t *testing.T) {
	expectOut(t, `
from omp4py import *
omp_set_nested(True)
print(omp_get_nested())
omp_set_dynamic(True)
print(omp_get_dynamic())
omp_set_max_active_levels(3)
print(omp_get_max_active_levels())
print(omp_get_thread_limit() > 0, omp_get_num_procs() > 0)
omp_set_schedule("dynamic", 8)
print(omp_get_schedule())
info = [0, 0, 0]
def body():
    if omp_get_thread_num() == 0:
        info[0] = omp_get_level()
        info[1] = omp_get_ancestor_thread_num(0)
        info[2] = omp_get_team_size(1)
__omp.parallel_run(body, 3, False, False)
print(info)
omp_set_nested(False)
omp_set_dynamic(False)
`, "True\nTrue\n3\nTrue True\n('dynamic', 8)\n[1, 0, 3]\n")
	runErr(t, `
from omp4py import *
omp_set_schedule("sideways")
`, "ValueError")
}

func TestLockMisuse(t *testing.T) {
	runErr(t, `
from omp4py import *
l = omp_init_lock()
omp_unset_lock(l)
`, "RuntimeError")
	runErr(t, `
from omp4py import *
omp_set_lock("not a lock")
`, "TypeError")
	runErr(t, `
from omp4py import *
n = omp_init_nest_lock()
omp_unset_nest_lock(n)
`, "RuntimeError")
}

func TestOmpWorksharingMisuse(t *testing.T) {
	runErr(t, "__omp.single_end()", "RuntimeError")
	runErr(t, "__omp.sections_next()", "RuntimeError")
	runErr(t, "__omp.sections_last()", "RuntimeError")
	runErr(t, "__omp.ordered_begin(0)", "RuntimeError")
	runErr(t, "__omp.for_next(42)", "TypeError")
	runErr(t, "__omp.for_bounds(1, 2)", "TypeError")
	runErr(t, "__omp.for_bounds(0, 10, 0)", "ValueError")
}

func TestBoundsIndexing(t *testing.T) {
	expectOut(t, `
b = __omp.for_bounds(2, 12, 2)
__omp.for_init(b, "", None, False, False)
total = 0
while __omp.for_next(b):
    print(b[0], b[1], b[2])
    for i in range(b[0], b[1], b[2]):
        total += i
__omp.for_end(b)
print(total)
`, "2 12 2\n30\n")
	runErr(t, `
b = __omp.for_bounds(0, 4, 1)
print(b[7])
`, "IndexError")
}

func TestEnumerateZipEdges(t *testing.T) {
	expectOut(t, `
print(enumerate([], 5), zip())
print(enumerate("ab", 10))
print(zip([1, 2, 3], "ab"))
`, "[] []\n[(10, 'a'), (11, 'b')]\n[(1, 'a'), (2, 'b')]\n")
}

func TestChainedAndNestedCalls(t *testing.T) {
	expectOut(t, `
def add(a):
    def inner(b):
        return a + b
    return inner
print(add(1)(2), add("x")("y"))
fns = [add(10), add(20)]
print(fns[0](5) + fns[1](5))
`, "3 xy\n40\n")
}

func TestIsOperatorSemantics(t *testing.T) {
	expectOut(t, `
a = [1]
b = a
print(a is b, a is [1], None is None)
print(1 is 1.0, "x" is "x")
print(a is not b, 3 is not None)
`, "True False True\nFalse True\nFalse True\n")
}

func TestDeepRecursionAndReturnPaths(t *testing.T) {
	expectOut(t, `
def depth(n):
    if n == 0:
        return "bottom"
    r = depth(n - 1)
    return r
print(depth(500))
def noreturn():
    x = 1
print(noreturn())
`, "bottom\nNone\n")
}

func TestStringEscapesRoundTrip(t *testing.T) {
	out := run(t, `print("tab\there\nnew \"quote\" back\\slash")`)
	want := "tab\there\nnew \"quote\" back\\slash\n"
	if out != want {
		t.Fatalf("got %q want %q", out, want)
	}
}

func TestParallelRunSections(t *testing.T) {
	expectOut(t, `
out = [0, 0, 0]
def body():
    __omp.sections_begin(3, False)
    while True:
        s = __omp.sections_next()
        if s < 0:
            break
        out[s] = s + 1
    __omp.sections_end()
__omp.parallel_run(body, 2, False, False)
print(out)
`, "[1, 2, 3]\n")
}

func TestParallelRunMasterAndCritical(t *testing.T) {
	expectOut(t, `
count = [0, 0]
def body():
    if __omp.master():
        count[0] = count[0] + 1
    __omp.critical_enter("c")
    count[1] = count[1] + 1
    __omp.critical_exit("c")
__omp.parallel_run(body, 4, False, False)
print(count)
`, "[1, 4]\n")
}

func TestStrOfCollectionsNested(t *testing.T) {
	expectOut(t, `
print([{"k": (1, [2.5])}])
`, "[{'k': (1, [2.5])}]\n")
}

func TestGlobalAcrossFunctions(t *testing.T) {
	expectOut(t, `
state = {"calls": 0}
def bump():
    state["calls"] = state["calls"] + 1
def read():
    return state["calls"]
bump(); bump(); bump()
print(read())
`, "3\n")
}

func TestExceptionFromMethodPropagates(t *testing.T) {
	runErr(t, `
def f():
    return [1, 2][5]
try:
    f()
except KeyError:
    print("wrong handler")
`, "IndexError")
}

func TestStringContainsAndComparisonChain(t *testing.T) {
	expectOut(t, `
words = "the quick brown fox".split()
hits = 0
for w in words:
    if "o" in w:
        hits += 1
print(hits, "a" < "b" < "c" < "b")
`, "2 False\n")
}

func TestLargeIntArithmetic(t *testing.T) {
	expectOut(t, `
big = 2 ** 62
print(big // 2 ** 10 == 2 ** 52)
print((-2) ** 3, 10 ** 0)
`, "True\n-8 1\n")
}

func TestUnparseViaDumpOutputRunnable(t *testing.T) {
	// Sanity that runErr distinguishes messages (guards helper).
	if !strings.Contains("ZeroDivisionError: x", "ZeroDivisionError") {
		t.Fatal("helper sanity")
	}
}
