package interp

import (
	"errors"

	"github.com/omp4go/omp4go/internal/minipy"
)

// frame is the execution context of one function activation (or the
// module top level, where scope is nil and env == globals).
type frame struct {
	env     *Env
	globals *Env
	scope   *minipy.ScopeInfo
}

// execBlock executes statements at module level (env == globals).
func (th *Thread) execBlock(env, globals *Env, body []minipy.Stmt) error {
	fr := &frame{env: env, globals: globals}
	return th.execStmts(fr, body)
}

func (th *Thread) execStmts(fr *frame, body []minipy.Stmt) error {
	for _, s := range body {
		if err := th.execStmt(fr, s); err != nil {
			return err
		}
	}
	return nil
}

func (th *Thread) execStmt(fr *frame, s minipy.Stmt) error {
	if err := th.tick(s.NodePos()); err != nil {
		return err
	}
	switch t := s.(type) {
	case *minipy.ExprStmt:
		_, err := th.evalExpr(fr, t.X)
		return err
	case *minipy.Assign:
		v, err := th.evalExpr(fr, t.Value)
		if err != nil {
			return err
		}
		for _, tgt := range t.Targets {
			if err := th.assign(fr, tgt, v); err != nil {
				return err
			}
		}
		return nil
	case *minipy.AugAssign:
		return th.execAugAssign(fr, t)
	case *minipy.AnnAssign:
		// Annotations drive the CompiledDT specializer; the
		// interpreter only performs the assignment part.
		if t.Value == nil {
			return nil
		}
		v, err := th.evalExpr(fr, t.Value)
		if err != nil {
			return err
		}
		return th.assign(fr, t.Target, v)
	case *minipy.If:
		cond, err := th.evalExpr(fr, t.Cond)
		if err != nil {
			return err
		}
		if Truthy(cond) {
			return th.execStmts(fr, t.Body)
		}
		return th.execStmts(fr, t.Else)
	case *minipy.While:
		for {
			cond, err := th.evalExpr(fr, t.Cond)
			if err != nil {
				return err
			}
			if !Truthy(cond) {
				return nil
			}
			if err := th.execStmts(fr, t.Body); err != nil {
				if _, ok := err.(breakSignal); ok {
					return nil
				}
				if _, ok := err.(continueSignal); ok {
					continue
				}
				return err
			}
		}
	case *minipy.For:
		return th.execFor(fr, t)
	case *minipy.Break:
		return breakSignal{}
	case *minipy.Continue:
		return continueSignal{}
	case *minipy.Pass:
		return nil
	case *minipy.Return:
		var v Value
		if t.Value != nil {
			var err error
			v, err = th.evalExpr(fr, t.Value)
			if err != nil {
				return err
			}
		}
		return returnSignal{v: v}
	case *minipy.FuncDef:
		fn, err := th.makeFunction(fr, t)
		if err != nil {
			return err
		}
		v, err := th.applyDecorators(fr, t.Decorators, fn)
		if err != nil {
			return err
		}
		return th.assign(fr, &minipy.Name{ID: t.Name}, v)
	case *minipy.With:
		return th.execWith(fr, t)
	case *minipy.Global, *minipy.Nonlocal:
		return nil // handled by scope analysis
	case *minipy.Import:
		for _, a := range t.Names {
			mod, err := th.importModule(a.Name, s.NodePos())
			if err != nil {
				return err
			}
			name := a.AsName
			if name == "" {
				name = a.Name
			}
			if err := th.assign(fr, &minipy.Name{ID: name}, mod); err != nil {
				return err
			}
		}
		return nil
	case *minipy.FromImport:
		mod, err := th.importModule(t.Module, s.NodePos())
		if err != nil {
			return err
		}
		m := mod.(*Module)
		if t.Star {
			for name, v := range m.Attrs {
				if err := th.assign(fr, &minipy.Name{ID: name}, v); err != nil {
					return err
				}
			}
			return nil
		}
		for _, a := range t.Names {
			v, ok := m.Attrs[a.Name]
			if !ok {
				return &PyError{Type: "ImportError",
					Msg: "cannot import name '" + a.Name + "' from '" + t.Module + "'",
					Pos: s.NodePos()}
			}
			name := a.AsName
			if name == "" {
				name = a.Name
			}
			if err := th.assign(fr, &minipy.Name{ID: name}, v); err != nil {
				return err
			}
		}
		return nil
	case *minipy.Try:
		return th.execTry(fr, t)
	case *minipy.Raise:
		if t.Exc == nil {
			return &PyError{Type: "RuntimeError", Msg: "no active exception to re-raise", Pos: t.NodePos()}
		}
		v, err := th.evalExpr(fr, t.Exc)
		if err != nil {
			return err
		}
		switch e := v.(type) {
		case *ExcValue:
			return &PyError{Type: e.Type, Msg: Str(e.Msg), Pos: t.NodePos(), Value: e}
		case *Builtin:
			// raise ValueError (class, not instance)
			return &PyError{Type: e.Name, Msg: "", Pos: t.NodePos()}
		case string:
			return &PyError{Type: "Exception", Msg: e, Pos: t.NodePos()}
		}
		return typeErrorf(t.NodePos(), "exceptions must derive from BaseException")
	case *minipy.Assert:
		v, err := th.evalExpr(fr, t.Test)
		if err != nil {
			return err
		}
		if Truthy(v) {
			return nil
		}
		msg := ""
		if t.Msg != nil {
			mv, err := th.evalExpr(fr, t.Msg)
			if err != nil {
				return err
			}
			msg = Str(mv)
		}
		return &PyError{Type: "AssertionError", Msg: msg, Pos: t.NodePos()}
	case *minipy.Del:
		for _, tgt := range t.Targets {
			if err := th.execDel(fr, tgt); err != nil {
				return err
			}
		}
		return nil
	}
	return typeErrorf(s.NodePos(), "unsupported statement %T", s)
}

func (th *Thread) execFor(fr *frame, t *minipy.For) error {
	iter, err := th.evalExpr(fr, t.Iter)
	if err != nil {
		return err
	}
	runBody := func(loopVal Value) (stop bool, err error) {
		if err := th.assign(fr, t.Target, loopVal); err != nil {
			return true, err
		}
		if err := th.execStmts(fr, t.Body); err != nil {
			if _, ok := err.(breakSignal); ok {
				return true, nil
			}
			if _, ok := err.(continueSignal); ok {
				return false, nil
			}
			return true, err
		}
		return false, nil
	}
	switch it := iter.(type) {
	case *Range:
		if it.Step > 0 {
			for i := it.Start; i < it.Stop; i += it.Step {
				if stop, err := runBody(i); stop {
					return err
				}
			}
		} else if it.Step < 0 {
			for i := it.Start; i > it.Stop; i += it.Step {
				if stop, err := runBody(i); stop {
					return err
				}
			}
		}
		return nil
	case *List:
		for i := 0; i < it.Len(); i++ {
			if stop, err := runBody(it.Get(i)); stop {
				return err
			}
		}
		return nil
	case *Tuple:
		for _, v := range it.Elts {
			if stop, err := runBody(v); stop {
				return err
			}
		}
		return nil
	case *Dict:
		for _, kv := range it.Items() {
			if stop, err := runBody(kv[0]); stop {
				return err
			}
		}
		return nil
	case *Set:
		for _, v := range it.Values() {
			if stop, err := runBody(v); stop {
				return err
			}
		}
		return nil
	case string:
		for _, r := range it {
			if stop, err := runBody(string(r)); stop {
				return err
			}
		}
		return nil
	}
	return typeErrorf(t.NodePos(), "'%s' object is not iterable", TypeName(iter))
}

func (th *Thread) execAugAssign(fr *frame, t *minipy.AugAssign) error {
	switch tgt := t.Target.(type) {
	case *minipy.Name:
		cur, err := th.evalExpr(fr, tgt)
		if err != nil {
			return err
		}
		rhs, err := th.evalExpr(fr, t.Value)
		if err != nil {
			return err
		}
		nv, err := th.binaryOp(t.Op, cur, rhs, t.NodePos())
		if err != nil {
			return err
		}
		return th.assign(fr, tgt, nv)
	case *minipy.Index:
		cont, err := th.evalExpr(fr, tgt.X)
		if err != nil {
			return err
		}
		idx, err := th.evalExpr(fr, tgt.I)
		if err != nil {
			return err
		}
		cur, err := th.getItem(cont, idx, t.NodePos())
		if err != nil {
			return err
		}
		rhs, err := th.evalExpr(fr, t.Value)
		if err != nil {
			return err
		}
		nv, err := th.binaryOp(t.Op, cur, rhs, t.NodePos())
		if err != nil {
			return err
		}
		return th.setItem(cont, idx, nv, t.NodePos())
	case *minipy.Attribute:
		cur, err := th.evalExpr(fr, tgt)
		if err != nil {
			return err
		}
		rhs, err := th.evalExpr(fr, t.Value)
		if err != nil {
			return err
		}
		nv, err := th.binaryOp(t.Op, cur, rhs, t.NodePos())
		if err != nil {
			return err
		}
		return th.assign(fr, tgt, nv)
	}
	return typeErrorf(t.NodePos(), "invalid augmented assignment target")
}

// assign stores v into an assignment target.
func (th *Thread) assign(fr *frame, target minipy.Expr, v Value) error {
	switch tgt := target.(type) {
	case *minipy.Name:
		th.assignName(fr, tgt.ID, v)
		return nil
	case *minipy.Index:
		cont, err := th.evalExpr(fr, tgt.X)
		if err != nil {
			return err
		}
		idx, err := th.evalExpr(fr, tgt.I)
		if err != nil {
			return err
		}
		return th.setItem(cont, idx, v, tgt.NodePos())
	case *minipy.Attribute:
		obj, err := th.evalExpr(fr, tgt.X)
		if err != nil {
			return err
		}
		if m, ok := obj.(*Module); ok {
			m.Attrs[tgt.Name] = v
			return nil
		}
		return typeErrorf(tgt.NodePos(), "cannot set attribute %q on %s", tgt.Name, TypeName(obj))
	case *minipy.TupleLit:
		return th.unpack(fr, tgt.Elts, v, tgt.NodePos())
	case *minipy.ListLit:
		return th.unpack(fr, tgt.Elts, v, tgt.NodePos())
	case *minipy.SliceExpr:
		return typeErrorf(tgt.NodePos(), "slice assignment is not supported")
	}
	return typeErrorf(target.NodePos(), "cannot assign to %T", target)
}

func (th *Thread) unpack(fr *frame, targets []minipy.Expr, v Value, pos minipy.Position) error {
	var vals []Value
	switch src := v.(type) {
	case *Tuple:
		vals = src.Elts
	case *List:
		vals = src.Values()
	default:
		return typeErrorf(pos, "cannot unpack non-sequence %s", TypeName(v))
	}
	if len(vals) != len(targets) {
		return valueErrorf(pos, "expected %d values to unpack, got %d", len(targets), len(vals))
	}
	for i, tgt := range targets {
		if err := th.assign(fr, tgt, vals[i]); err != nil {
			return err
		}
	}
	return nil
}

// assignName implements Python's binding rules using the frame's
// scope info.
func (th *Thread) assignName(fr *frame, name string, v Value) {
	if fr.scope != nil {
		switch {
		case fr.scope.Globals[name]:
			fr.globals.DefineValue(name, v)
			return
		case fr.scope.Nonlocals[name]:
			// Find the cell in an enclosing function scope.
			for env := fr.env.parent; env != nil; env = env.parent {
				if env == fr.globals {
					break
				}
				if c, ok := env.Lookup(name); ok {
					c.SetValue(v)
					return
				}
			}
			// Conforming programs declare nonlocal only for existing
			// bindings; fall through to a local definition otherwise.
		}
	}
	fr.env.DefineValue(name, v)
}

func (th *Thread) execDel(fr *frame, target minipy.Expr) error {
	switch tgt := target.(type) {
	case *minipy.Index:
		cont, err := th.evalExpr(fr, tgt.X)
		if err != nil {
			return err
		}
		idx, err := th.evalExpr(fr, tgt.I)
		if err != nil {
			return err
		}
		switch c := cont.(type) {
		case *Dict:
			ok, err := c.Delete(idx)
			if err != nil {
				return err
			}
			if !ok {
				return &PyError{Type: "KeyError", Msg: Repr(idx), Pos: tgt.NodePos()}
			}
			return nil
		case *List:
			i, ok := idx.(int64)
			if !ok {
				return typeErrorf(tgt.NodePos(), "list indices must be integers")
			}
			if _, ok := c.Pop(int(i)); !ok {
				return &PyError{Type: "IndexError", Msg: "list index out of range", Pos: tgt.NodePos()}
			}
			return nil
		}
		return typeErrorf(tgt.NodePos(), "cannot delete item of %s", TypeName(cont))
	case *minipy.Name:
		// Deleting a binding: mark the cell unset. Pre-bound but
		// never-assigned locals (frame setup defines every local
		// upfront) count as undefined here.
		if c, ok := fr.env.Resolve(tgt.ID); ok && c.set {
			c.set = false
			c.v = nil
			return nil
		}
		return nameErrorf(tgt.NodePos(), "name %q is not defined", tgt.ID)
	}
	return typeErrorf(target.NodePos(), "cannot delete %T", target)
}

func (th *Thread) execTry(fr *frame, t *minipy.Try) error {
	err := th.execStmts(fr, t.Body)
	if err != nil {
		var pe *PyError
		if errors.As(err, &pe) {
			handled := false
			for _, h := range t.Handlers {
				match := h.Type == nil
				if !match {
					if name, ok := h.Type.(*minipy.Name); ok {
						match = pe.Matches(name.ID)
					}
				}
				if !match {
					continue
				}
				handled = true
				if h.Name != "" {
					exc := pe.Value
					if exc == nil {
						exc = &ExcValue{Type: pe.Type, Msg: pe.Msg}
					}
					th.assignName(fr, h.Name, exc)
				}
				err = th.execStmts(fr, h.Body)
				break
			}
			if !handled {
				// fall through with the original error
			}
		}
		if ferr := th.execStmts(fr, t.Final); ferr != nil {
			return ferr
		}
		return err
	}
	return th.execStmts(fr, t.Final)
}

// execWith runs a with statement. `with omp("...")` blocks reaching
// the interpreter untransformed are inert containers, per §III-A: the
// body simply executes. Other context expressions are evaluated (and
// bound by "as") but no context-manager protocol runs.
func (th *Thread) execWith(fr *frame, t *minipy.With) error {
	for _, item := range t.Items {
		v, err := th.evalExpr(fr, item.Context)
		if err != nil {
			return err
		}
		if item.Vars != nil {
			if err := th.assign(fr, item.Vars, v); err != nil {
				return err
			}
		}
	}
	return th.execStmts(fr, t.Body)
}

func (th *Thread) makeFunction(fr *frame, t *minipy.FuncDef) (*Function, error) {
	scope := th.in.scopeOf(t)
	fn := &Function{
		Name:    t.Name,
		Params:  t.Params,
		Body:    t.Body,
		Env:     fr.env,
		Scope:   scope,
		Globals: fr.globals,
	}
	// Defaults evaluate once, at definition time.
	for _, p := range t.Params {
		if p.Default == nil {
			fn.Defaults = append(fn.Defaults, nil)
			continue
		}
		v, err := th.evalExpr(fr, p.Default)
		if err != nil {
			return nil, err
		}
		fn.Defaults = append(fn.Defaults, v)
	}
	if th.in.compileHook != nil {
		th.in.compileHook(t, fn)
	}
	return fn, nil
}

func (th *Thread) applyDecorators(fr *frame, decorators []minipy.Expr, fn Value) (Value, error) {
	// Applied bottom-up, as in Python.
	v := fn
	for i := len(decorators) - 1; i >= 0; i-- {
		d, err := th.evalExpr(fr, decorators[i])
		if err != nil {
			return nil, err
		}
		v, err = th.Call(d, []Value{v}, decorators[i].NodePos())
		if err != nil {
			return nil, err
		}
	}
	return v, nil
}

func (th *Thread) importModule(name string, pos minipy.Position) (Value, error) {
	if m, ok := th.in.modules[name]; ok {
		return m, nil
	}
	return nil, &PyError{Type: "ImportError", Msg: "no module named '" + name + "'", Pos: pos}
}
