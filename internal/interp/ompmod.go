package interp

import (
	"errors"
	"fmt"

	"strings"

	"github.com/omp4go/omp4go/internal/directive"
	"github.com/omp4go/omp4go/internal/minipy"
	"github.com/omp4go/omp4go/internal/rt"
)

// This file implements the two OpenMP-facing modules:
//
//   - omp4py: the user API — the inert omp() directive container and
//     the OpenMP runtime library routines (omp_get_num_threads, ...).
//   - __omp: the internal module referenced by transformer-generated
//     code (parallel_run, for_bounds/for_init/for_next, task_submit,
//     ...), bridging to the rt runtime exactly as OMP4Py's generated
//     code calls into its runtime/cruntime.

// BoundsVal wraps the per-thread loop descriptor; generated code
// indexes it like the __omp_bounds array of Fig. 3 ([0] is the
// current chunk's first loop value, [1] its exclusive end).
type BoundsVal struct {
	B *rt.LoopBounds
}

// LockVal wraps an OpenMP simple lock.
type LockVal struct{ L *rt.Lock }

// NestLockVal wraps an OpenMP nestable lock.
type NestLockVal struct{ L *rt.NestLock }

func (in *Interp) installOmpModule() {
	user := map[string]Value{}
	gen := map[string]Value{}

	reg := func(m map[string]Value, name string, releases bool,
		fn func(th *Thread, args []Value) (Value, error)) {
		m[name] = &Builtin{Name: name, Fn: fn, ReleasesGIL: releases}
	}

	// The inert directive container: calling omp("...") does nothing
	// at run time (§III-A); it also passes decorated functions
	// through unchanged when code reaches the interpreter without
	// transformation.
	user["omp"] = &Builtin{Name: "omp", FnKw: func(th *Thread, args []Value, kwargs map[string]Value) (Value, error) {
		if len(args) == 1 {
			if _, isFn := args[0].(*Function); isFn {
				return args[0], nil
			}
		}
		return nil, nil
	}, Fn: func(th *Thread, args []Value) (Value, error) {
		if len(args) == 1 {
			if _, isFn := args[0].(*Function); isFn {
				return args[0], nil
			}
		}
		return nil, nil
	}}

	// ---- user-facing runtime library routines ----

	reg(user, "omp_get_thread_num", false, func(th *Thread, args []Value) (Value, error) {
		return int64(th.ctx.GetThreadNum()), nil
	})
	reg(user, "omp_get_num_threads", false, func(th *Thread, args []Value) (Value, error) {
		return int64(th.ctx.GetNumThreads()), nil
	})
	reg(user, "omp_set_num_threads", false, func(th *Thread, args []Value) (Value, error) {
		n, ok := asInt(args[0])
		if !ok {
			return nil, typeErrorf(minipy.Position{}, "omp_set_num_threads() requires an int")
		}
		th.in.rt.SetNumThreads(int(n))
		return nil, nil
	})
	reg(user, "omp_get_max_threads", false, func(th *Thread, args []Value) (Value, error) {
		return int64(th.in.rt.GetMaxThreads()), nil
	})
	reg(user, "omp_in_parallel", false, func(th *Thread, args []Value) (Value, error) {
		return th.ctx.InParallel(), nil
	})
	reg(user, "omp_set_nested", false, func(th *Thread, args []Value) (Value, error) {
		th.in.rt.SetNested(Truthy(args[0]))
		return nil, nil
	})
	reg(user, "omp_get_nested", false, func(th *Thread, args []Value) (Value, error) {
		return th.in.rt.GetNested(), nil
	})
	reg(user, "omp_set_dynamic", false, func(th *Thread, args []Value) (Value, error) {
		th.in.rt.SetDynamic(Truthy(args[0]))
		return nil, nil
	})
	reg(user, "omp_get_dynamic", false, func(th *Thread, args []Value) (Value, error) {
		return th.in.rt.GetDynamic(), nil
	})
	reg(user, "omp_get_level", false, func(th *Thread, args []Value) (Value, error) {
		return int64(th.ctx.GetLevel()), nil
	})
	reg(user, "omp_get_active_level", false, func(th *Thread, args []Value) (Value, error) {
		return int64(th.ctx.GetActiveLevel()), nil
	})
	reg(user, "omp_get_ancestor_thread_num", false, func(th *Thread, args []Value) (Value, error) {
		n, ok := asInt(args[0])
		if !ok {
			return nil, typeErrorf(minipy.Position{}, "level must be int")
		}
		return int64(th.ctx.GetAncestorThreadNum(int(n))), nil
	})
	reg(user, "omp_get_team_size", false, func(th *Thread, args []Value) (Value, error) {
		n, ok := asInt(args[0])
		if !ok {
			return nil, typeErrorf(minipy.Position{}, "level must be int")
		}
		return int64(th.ctx.GetTeamSize(int(n))), nil
	})
	reg(user, "omp_get_wtime", false, func(th *Thread, args []Value) (Value, error) {
		return th.in.rt.GetWTime(), nil
	})
	reg(user, "omp_get_wtick", false, func(th *Thread, args []Value) (Value, error) {
		return th.in.rt.GetWTick(), nil
	})
	reg(user, "omp_set_max_active_levels", false, func(th *Thread, args []Value) (Value, error) {
		n, ok := asInt(args[0])
		if !ok {
			return nil, typeErrorf(minipy.Position{}, "levels must be int")
		}
		th.in.rt.SetMaxActiveLevels(int(n))
		return nil, nil
	})
	reg(user, "omp_get_max_active_levels", false, func(th *Thread, args []Value) (Value, error) {
		return int64(th.in.rt.GetMaxActiveLevels()), nil
	})
	reg(user, "omp_get_thread_limit", false, func(th *Thread, args []Value) (Value, error) {
		return int64(th.in.rt.GetThreadLimit()), nil
	})
	reg(user, "omp_get_num_procs", false, func(th *Thread, args []Value) (Value, error) {
		return int64(th.in.rt.GetMaxThreads()), nil
	})
	reg(user, "omp_set_schedule", false, func(th *Thread, args []Value) (Value, error) {
		if len(args) < 1 || len(args) > 2 {
			return nil, typeErrorf(minipy.Position{}, "omp_set_schedule(kind, chunk)")
		}
		kindStr, ok := args[0].(string)
		if !ok {
			return nil, typeErrorf(minipy.Position{}, "schedule kind must be a string")
		}
		kind, err := directive.ParseScheduleKind(kindStr)
		if err != nil {
			return nil, valueErrorf(minipy.Position{}, "%v", err)
		}
		chunk := int64(0)
		if len(args) == 2 {
			c, ok := asInt(args[1])
			if !ok {
				return nil, typeErrorf(minipy.Position{}, "chunk must be int")
			}
			chunk = c
		}
		if err := th.in.rt.SetSchedule(rt.Schedule{Kind: kind, Chunk: chunk}); err != nil {
			return nil, valueErrorf(minipy.Position{}, "%v", err)
		}
		return nil, nil
	})
	reg(user, "omp_get_schedule", false, func(th *Thread, args []Value) (Value, error) {
		s := th.in.rt.GetSchedule()
		return &Tuple{Elts: []Value{s.Kind.String(), s.Chunk}}, nil
	})

	// Locks.
	reg(user, "omp_init_lock", false, func(th *Thread, args []Value) (Value, error) {
		return &LockVal{L: &rt.Lock{}}, nil
	})
	reg(user, "omp_destroy_lock", false, func(th *Thread, args []Value) (Value, error) {
		return nil, nil
	})
	reg(user, "omp_set_lock", true, func(th *Thread, args []Value) (Value, error) {
		l, ok := args[0].(*LockVal)
		if !ok {
			return nil, typeErrorf(minipy.Position{}, "omp_set_lock() requires a lock")
		}
		l.L.Set()
		return nil, nil
	})
	reg(user, "omp_unset_lock", false, func(th *Thread, args []Value) (Value, error) {
		l, ok := args[0].(*LockVal)
		if !ok {
			return nil, typeErrorf(minipy.Position{}, "omp_unset_lock() requires a lock")
		}
		if err := l.L.Unset(); err != nil {
			return nil, runtimeErr(err)
		}
		return nil, nil
	})
	reg(user, "omp_test_lock", false, func(th *Thread, args []Value) (Value, error) {
		l, ok := args[0].(*LockVal)
		if !ok {
			return nil, typeErrorf(minipy.Position{}, "omp_test_lock() requires a lock")
		}
		return l.L.Test(), nil
	})
	reg(user, "omp_init_nest_lock", false, func(th *Thread, args []Value) (Value, error) {
		return &NestLockVal{L: &rt.NestLock{}}, nil
	})
	reg(user, "omp_destroy_nest_lock", false, func(th *Thread, args []Value) (Value, error) {
		return nil, nil
	})
	reg(user, "omp_set_nest_lock", true, func(th *Thread, args []Value) (Value, error) {
		l, ok := args[0].(*NestLockVal)
		if !ok {
			return nil, typeErrorf(minipy.Position{}, "omp_set_nest_lock() requires a nest lock")
		}
		l.L.Set(th.ctx)
		return nil, nil
	})
	reg(user, "omp_unset_nest_lock", false, func(th *Thread, args []Value) (Value, error) {
		l, ok := args[0].(*NestLockVal)
		if !ok {
			return nil, typeErrorf(minipy.Position{}, "omp_unset_nest_lock() requires a nest lock")
		}
		if err := l.L.Unset(th.ctx); err != nil {
			return nil, runtimeErr(err)
		}
		return nil, nil
	})
	reg(user, "omp_test_nest_lock", false, func(th *Thread, args []Value) (Value, error) {
		l, ok := args[0].(*NestLockVal)
		if !ok {
			return nil, typeErrorf(minipy.Position{}, "omp_test_nest_lock() requires a nest lock")
		}
		return int64(l.L.Test(th.ctx)), nil
	})

	// ---- generated-code runtime entry points (__omp) ----

	reg(gen, "parallel_run", true, func(th *Thread, args []Value) (Value, error) {
		// parallel_run(fn, nthreads, if_set, if_val[, label]) — the
		// optional 5th argument is the directive's source label for
		// the time-attribution profiler (older generated code omits
		// it).
		if len(args) != 4 && len(args) != 5 {
			return nil, typeErrorf(minipy.Position{}, "parallel_run expects 4 or 5 arguments")
		}
		fn := args[0]
		opts := rt.ParallelOpts{}
		if n, ok := asInt(args[1]); ok && n > 0 {
			opts.NumThreads = int(n)
		}
		if Truthy(args[2]) {
			opts.IfSet = true
			opts.If = Truthy(args[3])
		}
		if len(args) == 5 {
			if s, ok := args[4].(string); ok {
				opts.Label = s
			}
		}
		in := th.in
		err := in.rt.Parallel(th.ctx, opts, func(c *rt.Context) error {
			member := in.spawn(c)
			if in.gil != nil {
				in.gil.acquire()
				defer in.gil.release()
			}
			_, err := member.Call(fn, nil, minipy.Position{})
			return err
		})
		if err != nil {
			return nil, runtimeErr(err)
		}
		return nil, nil
	})

	reg(gen, "for_bounds", false, func(th *Thread, args []Value) (Value, error) {
		if len(args) == 0 || len(args)%3 != 0 {
			return nil, typeErrorf(minipy.Position{}, "for_bounds expects start/stop/step triplets")
		}
		trips := make([]rt.Triplet, 0, len(args)/3)
		for i := 0; i < len(args); i += 3 {
			s, ok1 := asInt(args[i])
			e, ok2 := asInt(args[i+1])
			st, ok3 := asInt(args[i+2])
			if !ok1 || !ok2 || !ok3 {
				return nil, typeErrorf(minipy.Position{}, "loop bounds must be integers")
			}
			if st == 0 {
				return nil, valueErrorf(minipy.Position{}, "range() arg 3 must not be zero")
			}
			trips = append(trips, rt.Triplet{Start: s, End: e, Step: st})
		}
		return &BoundsVal{B: rt.ForBounds(trips...)}, nil
	})

	reg(gen, "for_init", false, func(th *Thread, args []Value) (Value, error) {
		// for_init(b, kind, chunk, ordered, nowait)
		if len(args) != 5 {
			return nil, typeErrorf(minipy.Position{}, "for_init expects 5 arguments")
		}
		b, ok := args[0].(*BoundsVal)
		if !ok {
			return nil, typeErrorf(minipy.Position{}, "for_init first argument must be loop bounds")
		}
		opts := rt.ForOpts{
			Ordered: Truthy(args[3]),
			NoWait:  Truthy(args[4]),
		}
		if kindStr, ok := args[1].(string); ok && kindStr != "" {
			kind, err := directive.ParseScheduleKind(kindStr)
			if err != nil {
				return nil, valueErrorf(minipy.Position{}, "%v", err)
			}
			opts.SchedSet = true
			opts.Sched.Kind = kind
			if chunk, ok := asInt(args[2]); ok {
				if chunk < 1 {
					return nil, valueErrorf(minipy.Position{}, "chunk size must be positive")
				}
				opts.Sched.Chunk = chunk
			}
		}
		if err := th.ctx.ForInit(b.B, opts); err != nil {
			return nil, runtimeErr(err)
		}
		return nil, nil
	})

	reg(gen, "for_next", false, func(th *Thread, args []Value) (Value, error) {
		b, ok := args[0].(*BoundsVal)
		if !ok {
			return nil, typeErrorf(minipy.Position{}, "for_next argument must be loop bounds")
		}
		return b.B.ForNext(), nil
	})

	reg(gen, "for_last", false, func(th *Thread, args []Value) (Value, error) {
		b, ok := args[0].(*BoundsVal)
		if !ok {
			return nil, typeErrorf(minipy.Position{}, "for_last argument must be loop bounds")
		}
		return b.B.IsLast(), nil
	})

	reg(gen, "for_end", true, func(th *Thread, args []Value) (Value, error) {
		b, ok := args[0].(*BoundsVal)
		if !ok {
			return nil, typeErrorf(minipy.Position{}, "for_end argument must be loop bounds")
		}
		if err := th.ctx.ForEnd(b.B); err != nil {
			return nil, runtimeErr(err)
		}
		return nil, nil
	})

	reg(gen, "lin_lo", false, func(th *Thread, args []Value) (Value, error) {
		b, ok := args[0].(*BoundsVal)
		if !ok {
			return nil, typeErrorf(minipy.Position{}, "lin_lo argument must be loop bounds")
		}
		return b.B.Lo, nil
	})

	reg(gen, "lin_hi", false, func(th *Thread, args []Value) (Value, error) {
		b, ok := args[0].(*BoundsVal)
		if !ok {
			return nil, typeErrorf(minipy.Position{}, "lin_hi argument must be loop bounds")
		}
		return b.B.Hi, nil
	})

	reg(gen, "unravel", false, func(th *Thread, args []Value) (Value, error) {
		b, ok := args[0].(*BoundsVal)
		if !ok {
			return nil, typeErrorf(minipy.Position{}, "unravel first argument must be loop bounds")
		}
		lin, ok := asInt(args[1])
		if !ok {
			return nil, typeErrorf(minipy.Position{}, "unravel index must be int")
		}
		idx := b.B.Unravel(lin)
		elts := make([]Value, len(idx))
		for i, v := range idx {
			elts[i] = v
		}
		return &Tuple{Elts: elts}, nil
	})

	reg(gen, "barrier", true, func(th *Thread, args []Value) (Value, error) {
		if err := th.ctx.Barrier(); err != nil {
			return nil, runtimeErr(err)
		}
		return nil, nil
	})

	reg(gen, "single_begin", false, func(th *Thread, args []Value) (Value, error) {
		// single_begin(nowait, copyprivate)
		s, err := th.ctx.SingleBegin(Truthy(args[0]), Truthy(args[1]))
		if err != nil {
			return nil, runtimeErr(err)
		}
		th.singles = append(th.singles, s)
		return s.Executes(), nil
	})

	reg(gen, "single_copyprivate", false, func(th *Thread, args []Value) (Value, error) {
		if len(th.singles) == 0 {
			return nil, runtimeErr(&rt.MisuseError{Construct: "single", Msg: "copyprivate outside single"})
		}
		s := th.singles[len(th.singles)-1]
		if err := s.CopyPrivate(args[0]); err != nil {
			return nil, runtimeErr(err)
		}
		return nil, nil
	})

	reg(gen, "single_end", true, func(th *Thread, args []Value) (Value, error) {
		if len(th.singles) == 0 {
			return nil, runtimeErr(&rt.MisuseError{Construct: "single", Msg: "single_end without single_begin"})
		}
		s := th.singles[len(th.singles)-1]
		th.singles = th.singles[:len(th.singles)-1]
		v, err := s.End()
		if err != nil {
			return nil, runtimeErr(err)
		}
		return v, nil
	})

	reg(gen, "sections_begin", false, func(th *Thread, args []Value) (Value, error) {
		n, ok := asInt(args[0])
		if !ok {
			return nil, typeErrorf(minipy.Position{}, "sections count must be int")
		}
		s, err := th.ctx.SectionsBegin(int(n), Truthy(args[1]))
		if err != nil {
			return nil, runtimeErr(err)
		}
		th.sections = append(th.sections, s)
		return nil, nil
	})

	reg(gen, "sections_next", false, func(th *Thread, args []Value) (Value, error) {
		if len(th.sections) == 0 {
			return nil, runtimeErr(&rt.MisuseError{Construct: "sections", Msg: "sections_next outside sections"})
		}
		return th.sections[len(th.sections)-1].Next(), nil
	})

	reg(gen, "sections_last", false, func(th *Thread, args []Value) (Value, error) {
		if len(th.sections) == 0 {
			return nil, runtimeErr(&rt.MisuseError{Construct: "sections", Msg: "sections_last outside sections"})
		}
		return th.sections[len(th.sections)-1].IsLast(), nil
	})

	reg(gen, "sections_end", true, func(th *Thread, args []Value) (Value, error) {
		if len(th.sections) == 0 {
			return nil, runtimeErr(&rt.MisuseError{Construct: "sections", Msg: "sections_end without sections_begin"})
		}
		s := th.sections[len(th.sections)-1]
		th.sections = th.sections[:len(th.sections)-1]
		if err := s.End(); err != nil {
			return nil, runtimeErr(err)
		}
		return nil, nil
	})

	reg(gen, "master", false, func(th *Thread, args []Value) (Value, error) {
		return th.ctx.Master(), nil
	})

	reg(gen, "critical_enter", true, func(th *Thread, args []Value) (Value, error) {
		name, _ := args[0].(string)
		th.ctx.CriticalEnter(name)
		return nil, nil
	})

	reg(gen, "critical_exit", false, func(th *Thread, args []Value) (Value, error) {
		name, _ := args[0].(string)
		th.ctx.CriticalExit(name)
		return nil, nil
	})

	reg(gen, "mutex_lock", true, func(th *Thread, args []Value) (Value, error) {
		th.ctx.CriticalEnter("__omp_reduction")
		return nil, nil
	})

	reg(gen, "mutex_unlock", false, func(th *Thread, args []Value) (Value, error) {
		th.ctx.CriticalExit("__omp_reduction")
		return nil, nil
	})

	reg(gen, "flush", false, func(th *Thread, args []Value) (Value, error) {
		// Go's memory model makes the runtime's synchronization points
		// full fences; flush is a no-op beyond its ordering role.
		return nil, nil
	})

	reg(gen, "task_submit", true, func(th *Thread, args []Value) (Value, error) {
		// task_submit(fn, if_set, if_val, final_set, final_val
		//             [, in_keys, out_keys, inout_keys])
		if len(args) != 5 && len(args) != 8 {
			return nil, typeErrorf(minipy.Position{}, "task_submit expects 5 or 8 arguments")
		}
		fn := args[0]
		opts := rt.TaskOpts{}
		if Truthy(args[1]) {
			opts.IfSet, opts.If = true, Truthy(args[2])
		}
		if Truthy(args[3]) {
			opts.FinalSet, opts.Final = true, Truthy(args[4])
		}
		if len(args) == 8 {
			var err error
			if opts.Depends, err = appendDepKeys(opts.Depends, args[5], rt.DepIn); err != nil {
				return nil, err
			}
			if opts.Depends, err = appendDepKeys(opts.Depends, args[6], rt.DepOut); err != nil {
				return nil, err
			}
			if opts.Depends, err = appendDepKeys(opts.Depends, args[7], rt.DepInOut); err != nil {
				return nil, err
			}
		}
		in := th.in
		err := th.ctx.SubmitTask(opts, func(c *rt.Context) error {
			tth := in.spawn(c)
			if in.gil != nil {
				in.gil.acquire()
				defer in.gil.release()
			}
			_, err := tth.Call(fn, nil, minipy.Position{})
			return err
		})
		if err != nil {
			return nil, runtimeErr(err)
		}
		return nil, nil
	})

	reg(gen, "task_wait", true, func(th *Thread, args []Value) (Value, error) {
		if err := th.ctx.TaskWait(); err != nil {
			return nil, runtimeErr(err)
		}
		return nil, nil
	})

	reg(gen, "taskloop", true, func(th *Thread, args []Value) (Value, error) {
		// taskloop(fn, start, stop, step, grainsize, num_tasks,
		//          nogroup, if_set, if_val, final_set, final_val)
		if len(args) != 11 {
			return nil, typeErrorf(minipy.Position{}, "taskloop expects 11 arguments")
		}
		fn := args[0]
		s, ok1 := asInt(args[1])
		e, ok2 := asInt(args[2])
		st, ok3 := asInt(args[3])
		if !ok1 || !ok2 || !ok3 {
			return nil, typeErrorf(minipy.Position{}, "taskloop bounds must be integers")
		}
		if st == 0 {
			return nil, valueErrorf(minipy.Position{}, "range() arg 3 must not be zero")
		}
		gs, ok4 := asInt(args[4])
		nt, ok5 := asInt(args[5])
		if !ok4 || !ok5 {
			return nil, typeErrorf(minipy.Position{}, "taskloop grainsize/num_tasks must be integers")
		}
		opts := rt.TaskLoopOpts{Grainsize: gs, NumTasks: nt, NoGroup: Truthy(args[6])}
		if Truthy(args[7]) {
			opts.IfSet, opts.If = true, Truthy(args[8])
		}
		if Truthy(args[9]) {
			opts.FinalSet, opts.Final = true, Truthy(args[10])
		}
		in := th.in
		b := rt.ForBounds(rt.Triplet{Start: s, End: e, Step: st})
		err := th.ctx.TaskLoop(b, opts, func(c *rt.Context, lo, hi int64) error {
			tth := in.spawn(c)
			if in.gil != nil {
				in.gil.acquire()
				defer in.gil.release()
			}
			_, err := tth.Call(fn, []Value{lo, hi}, minipy.Position{})
			return err
		})
		if err != nil {
			return nil, runtimeErr(err)
		}
		return nil, nil
	})

	reg(gen, "taskgroup_begin", false, func(th *Thread, args []Value) (Value, error) {
		th.ctx.TaskgroupBegin()
		return nil, nil
	})

	reg(gen, "taskgroup_end", true, func(th *Thread, args []Value) (Value, error) {
		if err := th.ctx.TaskgroupEnd(); err != nil {
			return nil, runtimeErr(err)
		}
		return nil, nil
	})

	reg(gen, "ordered_begin", true, func(th *Thread, args []Value) (Value, error) {
		i, ok := asInt(args[0])
		if !ok {
			return nil, typeErrorf(minipy.Position{}, "ordered iteration must be int")
		}
		if err := th.ctx.OrderedBegin(i); err != nil {
			return nil, runtimeErr(err)
		}
		return nil, nil
	})

	reg(gen, "ordered_end", false, func(th *Thread, args []Value) (Value, error) {
		if err := th.ctx.OrderedEnd(); err != nil {
			return nil, runtimeErr(err)
		}
		return nil, nil
	})

	reg(gen, "declare_reduction", false, func(th *Thread, args []Value) (Value, error) {
		// declare_reduction(ident, combiner_fn, init_fn_or_None)
		if len(args) != 3 {
			return nil, typeErrorf(minipy.Position{}, "declare_reduction expects 3 arguments")
		}
		ident, ok := args[0].(string)
		if !ok {
			return nil, typeErrorf(minipy.Position{}, "reduction identifier must be a string")
		}
		combiner := args[1]
		initFn := args[2]
		in := th.in
		decl := &rt.DeclaredReduction{
			Ident: ident,
			Combine: func(out, inVal any) any {
				// Combiner errors surface at merge time via panic; the
				// runtime contains task/team panics.
				tth := in.MainThread()
				defer tth.Release()
				v, err := tth.Call(combiner, []Value{out, inVal}, minipy.Position{})
				if err != nil {
					panic(err)
				}
				return v
			},
		}
		if initFn != nil {
			decl.Identity = func() any {
				tth := in.MainThread()
				defer tth.Release()
				v, err := tth.Call(initFn, nil, minipy.Position{})
				if err != nil {
					panic(err)
				}
				return v
			}
		}
		if err := in.rt.RegisterReduction(decl); err != nil {
			return nil, runtimeErr(err)
		}
		return nil, nil
	})

	reg(gen, "reduce_init", false, func(th *Thread, args []Value) (Value, error) {
		ident, ok := args[0].(string)
		if !ok {
			return nil, typeErrorf(minipy.Position{}, "reduction identifier must be a string")
		}
		d, found := th.in.rt.LookupReduction(ident)
		if !found {
			return nil, nameErrorf(minipy.Position{}, "reduction %q is not declared", ident)
		}
		if d.Identity == nil {
			return nil, nil
		}
		return d.Identity(), nil
	})

	reg(gen, "reduce_combine", false, func(th *Thread, args []Value) (Value, error) {
		if len(args) != 3 {
			return nil, typeErrorf(minipy.Position{}, "reduce_combine expects 3 arguments")
		}
		ident, ok := args[0].(string)
		if !ok {
			return nil, typeErrorf(minipy.Position{}, "reduction identifier must be a string")
		}
		d, found := th.in.rt.LookupReduction(ident)
		if !found {
			return nil, nameErrorf(minipy.Position{}, "reduction %q is not declared", ident)
		}
		th.ctx.ReductionMerge(ident)
		return d.Combine(args[1], args[2]), nil
	})

	for name, v := range user {
		gen[name] = v
	}

	in.modules["omp4py"] = &Module{Name: "omp4py", Attrs: user}
	// omp4py.pure is the explicit Python-runtime import of §III-F;
	// the layer is fixed per interpreter instance, so it aliases the
	// same module here.
	in.modules["omp4py.pure"] = in.modules["omp4py"]
	ompMod := &Module{Name: "__omp", Attrs: gen}
	in.modules["__omp"] = ompMod
	in.globals.DefineValue("__omp", ompMod)
	// The omp name itself is importable from omp4py and predefined
	// so decorated-but-untransformed code still parses and runs.
	in.globals.DefineValue("omp", user["omp"])
}

// WrapRuntimeError converts an internal/rt error into the
// interpreter's error domain, exactly as the __omp bridge entry
// points do (misuse → RuntimeError, budget kills passed through
// uncatchable). Exported for internal/compile's loop kernels, which
// call rt.Context methods without going through the bridge.
func WrapRuntimeError(err error) error { return runtimeErr(err) }

// runtimeErr converts runtime errors into MiniPy exceptions.
func runtimeErr(err error) error {
	if err == nil {
		return nil
	}
	// Budget kills crossing a region join stay budget kills: wrapping
	// one in a PyError would make it catchable (and masked) by tenant
	// except clauses.
	var be *BudgetError
	if errors.As(err, &be) {
		return be
	}
	var pe *PyError
	if errors.As(err, &pe) {
		return pe
	}
	var me *rt.MisuseError
	if errors.As(err, &me) {
		return &PyError{Type: "RuntimeError", Msg: me.Error()}
	}
	var tp *rt.TeamPanic
	if errors.As(err, &tp) {
		return &PyError{Type: "RuntimeError", Msg: tp.Error()}
	}
	return &PyError{Type: "RuntimeError", Msg: fmt.Sprintf("%v", err)}
}

// appendDepKeys converts one tuple of depend-operand keys from
// generated code into runtime dependence records. A plain string is a
// variable name used directly as the storage key; a subscripted
// operand arrives as a ("name", idx...) tuple and is flattened into a
// canonical "name[i,j]" string so element keys compare by value
// (tuples are reference values and would never match).
func appendDepKeys(deps []rt.Dep, v Value, kind rt.DepKind) ([]rt.Dep, error) {
	t, ok := v.(*Tuple)
	if !ok {
		return nil, typeErrorf(minipy.Position{}, "depend keys must be a tuple")
	}
	for _, e := range t.Elts {
		switch k := e.(type) {
		case string:
			deps = append(deps, rt.Dep{Key: k, Kind: kind})
		case *Tuple:
			if len(k.Elts) < 2 {
				return nil, typeErrorf(minipy.Position{}, "subscripted depend key needs a name and indices")
			}
			name, ok := k.Elts[0].(string)
			if !ok {
				return nil, typeErrorf(minipy.Position{}, "depend key root must be a name")
			}
			var b strings.Builder
			b.WriteString(name)
			b.WriteByte('[')
			for i, el := range k.Elts[1:] {
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%v", el)
			}
			b.WriteByte(']')
			deps = append(deps, rt.Dep{Key: b.String(), Kind: kind})
		default:
			return nil, typeErrorf(minipy.Position{}, "depend key must be a name or subscripted name")
		}
	}
	return deps, nil
}
