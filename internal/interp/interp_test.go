package interp

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/omp4go/omp4go/internal/rt"
)

// run executes src in a fresh interpreter and returns its stdout.
func run(t *testing.T, src string) string {
	t.Helper()
	var buf bytes.Buffer
	in := New(Options{Stdout: &buf, Layer: rt.LayerAtomic, Getenv: func(string) string { return "" }})
	if err := in.RunSource(src, "test.py"); err != nil {
		t.Fatalf("RunSource: %v\nsource:\n%s", err, src)
	}
	return buf.String()
}

// runErr executes src and returns the error (which must be non-nil).
func runErr(t *testing.T, src, wantSub string) {
	t.Helper()
	var buf bytes.Buffer
	in := New(Options{Stdout: &buf, Layer: rt.LayerAtomic, Getenv: func(string) string { return "" }})
	err := in.RunSource(src, "test.py")
	if err == nil {
		t.Fatalf("expected error containing %q, got success", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not contain %q", err, wantSub)
	}
}

func expectOut(t *testing.T, src, want string) {
	t.Helper()
	got := run(t, src)
	if got != want {
		t.Fatalf("output mismatch.\nsource:\n%s\ngot:  %q\nwant: %q", src, got, want)
	}
}

func TestArithmeticSemantics(t *testing.T) {
	expectOut(t, "print(1 + 2 * 3)", "7\n")
	expectOut(t, "print(7 / 2)", "3.5\n")  // true division yields float
	expectOut(t, "print(7 // 2)", "3\n")   // floor division
	expectOut(t, "print(-7 // 2)", "-4\n") // floors toward -inf
	expectOut(t, "print(7 % 3)", "1\n")
	expectOut(t, "print(-7 % 3)", "2\n") // modulo takes divisor sign
	expectOut(t, "print(7 % -3)", "-2\n")
	expectOut(t, "print(2 ** 10)", "1024\n")
	expectOut(t, "print(2 ** -1)", "0.5\n") // negative exponent yields float
	expectOut(t, "print(2.5 + 1)", "3.5\n") // int/float promotion
	expectOut(t, "print(7.0 // 2)", "3.0\n")
	expectOut(t, "print(-2 ** 2)", "-4\n")      // ** binds tighter than unary minus
	expectOut(t, "print(10 - 2 - 3)", "5\n")    // left associativity
	expectOut(t, "print(2 ** 3 ** 2)", "512\n") // right associativity
	expectOut(t, "print(5 & 3, 5 | 3, 5 ^ 3, 1 << 4, 64 >> 2)", "1 7 6 16 16\n")
	expectOut(t, "print(True + True)", "2\n") // bools are ints in arithmetic
}

func TestDivisionByZero(t *testing.T) {
	runErr(t, "x = 1 / 0", "ZeroDivisionError")
	runErr(t, "x = 1 // 0", "ZeroDivisionError")
	runErr(t, "x = 1 % 0", "ZeroDivisionError")
	runErr(t, "x = 1.5 / 0.0", "ZeroDivisionError")
}

func TestComparisonsAndBoolOps(t *testing.T) {
	expectOut(t, "print(1 < 2 < 3)", "True\n")
	expectOut(t, "print(1 < 2 > 3)", "False\n")
	expectOut(t, "print(1 == 1.0)", "True\n")
	expectOut(t, "print('a' < 'b', 'abc' == 'abc')", "True True\n")
	expectOut(t, "print(1 and 2)", "2\n") // and returns last truthy
	expectOut(t, "print(0 and 2)", "0\n") // short-circuit value
	expectOut(t, "print(0 or 'x')", "x\n")
	expectOut(t, "print(not 0, not [1])", "True False\n")
	expectOut(t, "print(None is None, 1 is 1, [] is [])", "True True False\n")
	expectOut(t, "print(2 in [1, 2, 3], 5 not in (1, 2))", "True True\n")
	expectOut(t, "print('ell' in 'hello')", "True\n")
	expectOut(t, "print(3 in range(0, 10, 3), 4 in range(0, 10, 3))", "True False\n")
}

func TestShortCircuitSkipsEvaluation(t *testing.T) {
	expectOut(t, `
def boom():
    return 1 / 0
x = False and boom()
y = True or boom()
print(x, y)
`, "False True\n")
}

func TestStrings(t *testing.T) {
	expectOut(t, `print("a" + "b", "ab" * 3)`, "ab ababab\n")
	expectOut(t, `print("hello"[1], "hello"[-1])`, "e o\n")
	expectOut(t, `print("hello"[1:4], "hello"[::-1])`, "ell olleh\n")
	expectOut(t, `print("a,b,c".split(","))`, "['a', 'b', 'c']\n")
	expectOut(t, `print(" x ".strip(), "ABC".lower(), "abc".upper())`, "x abc ABC\n")
	expectOut(t, `print("-".join(["a", "b"]))`, "a-b\n")
	expectOut(t, `print("hello world".replace("world", "there"))`, "hello there\n")
	expectOut(t, `print("hello".startswith("he"), "hello".endswith("lo"))`, "True True\n")
	expectOut(t, `print(len("hello"), "l" * 0)`, "5 \n")
	expectOut(t, `print("word".isalpha(), "123".isdigit(), "a1".isalpha())`, "True True False\n")
	expectOut(t, `
s = ""
for c in "abc":
    s = s + c + "."
print(s)
`, "a.b.c.\n")
}

func TestLists(t *testing.T) {
	expectOut(t, `
l = [1, 2, 3]
l.append(4)
l[0] = 10
print(l, len(l), l[-1])
`, "[10, 2, 3, 4] 4 4\n")
	expectOut(t, `
l = [3, 1, 2]
l.sort()
print(l)
l.reverse()
print(l)
print(l.index(2), l.count(3))
`, "[1, 2, 3]\n[3, 2, 1]\n1 1\n")
	expectOut(t, `
l = [0.0] * 5
print(l, len(l))
`, "[0.0, 0.0, 0.0, 0.0, 0.0] 5\n")
	expectOut(t, `
a = [1, 2]
b = a + [3]
print(b, a)
`, "[1, 2, 3] [1, 2]\n")
	expectOut(t, `
l = [1, 2, 3, 4, 5]
print(l[1:4], l[::2], l[::-1])
`, "[2, 3, 4] [1, 3, 5] [5, 4, 3, 2, 1]\n")
	expectOut(t, `
l = [5, 6, 7]
x = l.pop()
y = l.pop(0)
print(x, y, l)
`, "7 5 [6]\n")
	runErr(t, "l = [1]\nprint(l[5])", "IndexError")
	runErr(t, "l = [1]\nl[5] = 0", "IndexError")
}

func TestListStorageStrategies(t *testing.T) {
	l := NewList([]Value{1.0, 2.0})
	if l.Kind() != "float" {
		t.Fatalf("kind = %s", l.Kind())
	}
	l.Append(3.5)
	if l.Kind() != "float" || l.Len() != 3 {
		t.Fatalf("after float append: %s len %d", l.Kind(), l.Len())
	}
	l.Append("s") // promotes
	if l.Kind() != "generic" {
		t.Fatalf("after mixed append: %s", l.Kind())
	}
	if l.Get(0) != 1.0 || l.Get(3) != "s" {
		t.Fatal("values lost in promotion")
	}
	li := NewList([]Value{int64(1), int64(2)})
	if li.Kind() != "int" {
		t.Fatalf("int list kind = %s", li.Kind())
	}
	li.Set(0, 2.5) // store promotion
	if li.Kind() != "generic" || li.Get(0) != 2.5 {
		t.Fatal("set promotion failed")
	}
	empty := &List{}
	if empty.Kind() != "empty" {
		t.Fatalf("empty kind = %s", empty.Kind())
	}
	empty.Append(int64(7))
	if empty.Kind() != "int" {
		t.Fatalf("first append kind = %s", empty.Kind())
	}
}

func TestDicts(t *testing.T) {
	expectOut(t, `
d = {"a": 1, "b": 2}
d["c"] = 3
print(d["a"], len(d))
print(d.get("z"), d.get("z", 99))
print("a" in d, "z" in d)
`, "1 3\nNone 99\nTrue False\n")
	expectOut(t, `
d = {}
d[1] = "one"
d[1.0] = "uno"
print(d[1], len(d))
`, "uno 1\n") // integral float key collapses to int, as in Python
	expectOut(t, `
d = {"x": 1}
d.update({"y": 2})
print(sorted(d.keys()), sorted(d.values()))
for k in d:
    print(k, d[k])
`, "['x', 'y'] [1, 2]\nx 1\ny 2\n")
	expectOut(t, `
d = {"k": 5}
v = d.pop("k")
print(v, len(d), d.pop("k", -1))
`, "5 0 -1\n")
	expectOut(t, `
d = {(1, 2): "pair"}
print(d[(1, 2)])
`, "pair\n")
	expectOut(t, `
counts = {}
for w in ["a", "b", "a"]:
    counts[w] = counts.get(w, 0) + 1
print(counts["a"], counts["b"])
`, "2 1\n")
	runErr(t, `d = {}
print(d["missing"])`, "KeyError")
	runErr(t, "d = {[1]: 2}", "unhashable")
}

func TestDictInsertionOrderAndDelete(t *testing.T) {
	expectOut(t, `
d = {}
d["z"] = 1
d["a"] = 2
d["m"] = 3
del d["a"]
print(d.keys())
`, "['z', 'm']\n")
}

func TestSetsAndTuples(t *testing.T) {
	expectOut(t, `
s = {1, 2}
s.add(3)
s.add(2)
print(len(s), 3 in s)
s.remove(1)
print(len(s))
`, "3 True\n2\n")
	expectOut(t, `
t = (1, 2, 3)
a, b, c = t
print(a + b + c, t[1], len(t))
`, "6 2 3\n")
	expectOut(t, `
x, y = 1, 2
x, y = y, x
print(x, y)
`, "2 1\n")
	expectOut(t, `print((1, 2) < (1, 3), (2,) > (1, 9))`, "True True\n")
}

func TestControlFlow(t *testing.T) {
	expectOut(t, `
total = 0
for i in range(10):
    if i % 2 == 0:
        continue
    if i > 7:
        break
    total += i
print(total)
`, "16\n")
	expectOut(t, `
i = 0
while True:
    i += 1
    if i >= 5:
        break
print(i)
`, "5\n")
	expectOut(t, `
x = 15
if x < 10:
    print("small")
elif x < 20:
    print("medium")
else:
    print("large")
`, "medium\n")
	expectOut(t, `print("yes" if 1 < 2 else "no")`, "yes\n")
}

func TestFunctionsAndClosures(t *testing.T) {
	expectOut(t, `
def add(a, b=10):
    return a + b
print(add(1), add(1, 2), add(b=5, a=1))
`, "11 3 6\n")
	expectOut(t, `
def counter():
    n = 0
    def bump():
        nonlocal n
        n += 1
        return n
    return bump
c = counter()
print(c(), c(), c())
`, "1 2 3\n")
	expectOut(t, `
x = 1
def setter():
    global x
    x = 42
setter()
print(x)
`, "42\n")
	expectOut(t, `
def fact(n):
    if n <= 1:
        return 1
    return n * fact(n - 1)
print(fact(10))
`, "3628800\n")
	expectOut(t, `
f = lambda a, b=2: a * b
print(f(3), f(3, 4))
`, "6 12\n")
	runErr(t, `
def f():
    print(y)
    y = 1
f()
`, "UnboundLocalError")
	runErr(t, "def f(a):\n    return a\nf()", "missing required argument")
	runErr(t, "def f(a):\n    return a\nf(1, 2)", "positional arguments")
	runErr(t, "def f(a):\n    return a\nf(1, b=2)", "unexpected keyword")
}

func TestDecoratorsRun(t *testing.T) {
	expectOut(t, `
def shout(fn):
    def inner(x):
        return fn(x) + "!"
    return inner

@shout
def greet(name):
    return "hi " + name

print(greet("bob"))
`, "hi bob!\n")
}

func TestExceptions(t *testing.T) {
	expectOut(t, `
try:
    x = 1 / 0
except ZeroDivisionError:
    print("caught")
`, "caught\n")
	expectOut(t, `
try:
    raise ValueError("bad input")
except ValueError as e:
    print("got:", e.args[0])
`, "got: bad input\n")
	expectOut(t, `
def risky():
    raise KeyError("k")
try:
    risky()
except IndexError:
    print("index")
except KeyError:
    print("key")
except:
    print("other")
`, "key\n")
	expectOut(t, `
order = []
try:
    order.append("body")
    raise RuntimeError("x")
except RuntimeError:
    order.append("handler")
finally:
    order.append("finally")
print(order)
`, "['body', 'handler', 'finally']\n")
	expectOut(t, `
try:
    raise IndexError("i")
except LookupError:
    print("lookup catches index")
`, "lookup catches index\n")
	runErr(t, `
try:
    raise ValueError("escape")
except KeyError:
    print("nope")
`, "ValueError")
	expectOut(t, `
done = []
try:
    done.append(1)
finally:
    done.append(2)
print(done)
`, "[1, 2]\n")
	runErr(t, "assert 1 > 2, \"math broke\"", "AssertionError")
}

func TestBuiltins(t *testing.T) {
	expectOut(t, "print(abs(-3), abs(2.5), abs(-2.5))", "3 2.5 2.5\n")
	expectOut(t, "print(min(3, 1, 2), max([5, 9, 2]))", "1 9\n")
	expectOut(t, "print(sum([1, 2, 3]), sum([1.5, 2.5]), sum(range(101)))", "6 4.0 5050\n")
	expectOut(t, "print(int(3.9), int(-3.9), int('42'), int('-7'))", "3 -3 42 -7\n")
	expectOut(t, "print(float(3), float('2.5'))", "3.0 2.5\n")
	expectOut(t, "print(str(42), str(None), str([1]))", "42 None [1]\n")
	expectOut(t, "print(bool(0), bool(\"\"), bool([0]))", "False False True\n")
	expectOut(t, "print(list(range(4)), list(\"ab\"))", "[0, 1, 2, 3] ['a', 'b']\n")
	expectOut(t, "print(sorted([3, 1, 2]), sorted([3, 1, 2], reverse=True))", "[1, 2, 3] [3, 2, 1]\n")
	expectOut(t, "print(sorted(['bb', 'a'], key=len))", "['a', 'bb']\n")
	expectOut(t, "print(round(2.5), round(3.5), round(2.567, 2))", "2 4 2.57\n")
	expectOut(t, "print(isinstance(1, int), isinstance(1.5, int), isinstance('s', (int, str)))",
		"True False True\n")
	expectOut(t, "print(ord('A'), chr(66))", "65 B\n")
	expectOut(t, "print(enumerate(['a', 'b']))", "[(0, 'a'), (1, 'b')]\n")
	expectOut(t, "print(zip([1, 2], ['a', 'b']))", "[(1, 'a'), (2, 'b')]\n")
	expectOut(t, `
a = [1, 2]
b = a
print(id(a) == id(b), id(a) == id([1, 2]))
`, "True False\n")
}

func TestPrintKwargs(t *testing.T) {
	expectOut(t, `print("a", "b", sep="-", end="|")`, "a-b|")
}

func TestMathModule(t *testing.T) {
	out := run(t, `
import math
print(math.sqrt(16.0))
print(math.floor(2.7), math.ceil(2.1))
print(math.sin(0.0), math.cos(0.0))
print(math.pow(2.0, 10.0))
`)
	want := "4.0\n2 3\n0.0 1.0\n1024.0\n"
	if out != want {
		t.Fatalf("got %q want %q", out, want)
	}
	// math.pi
	out = run(t, "import math\nprint(math.pi > 3.14 and math.pi < 3.15)")
	if out != "True\n" {
		t.Fatalf("pi check: %q", out)
	}
	runErr(t, "import math\nmath.sqrt(-1.0)", "math domain error")
	runErr(t, "import nosuchmodule", "ImportError")
	runErr(t, "from math import nosuchfn", "ImportError")
}

func TestFromImportAndAliases(t *testing.T) {
	expectOut(t, `
from math import sqrt, floor as fl
import math as m
print(sqrt(4.0), fl(2.9), m.ceil(1.1))
`, "2.0 2 2\n")
}

func TestRandomDeterminism(t *testing.T) {
	src := `
import random
random.seed(42)
a = [random.randint(0, 100), random.randint(0, 100)]
random.seed(42)
b = [random.randint(0, 100), random.randint(0, 100)]
print(a == b)
v = random.random()
print(0.0 <= v and v < 1.0)
`
	expectOut(t, src, "True\nTrue\n")
}

func TestOmp4pyAPIOutsideParallel(t *testing.T) {
	expectOut(t, `
from omp4py import *
print(omp_get_thread_num(), omp_get_num_threads(), omp_in_parallel())
omp_set_num_threads(4)
print(omp_get_max_threads())
print(omp_get_level(), omp_get_active_level())
t = omp_get_wtime()
print(t >= 0.0)
`, "0 1 False\n4\n0 0\nTrue\n")
}

func TestOmpDirectiveIsInert(t *testing.T) {
	// Without the @omp transformation, directives do nothing and the
	// code runs sequentially (§III-A: "calls to the omp function
	// alone do not produce any effect").
	expectOut(t, `
from omp4py import *
total = 0
with omp("parallel for reduction(+:total)"):
    for i in range(5):
        total += i
print(total)
`, "10\n")
}

func TestOmpLocks(t *testing.T) {
	expectOut(t, `
from omp4py import *
l = omp_init_lock()
omp_set_lock(l)
print(omp_test_lock(l))
omp_unset_lock(l)
print(omp_test_lock(l))
omp_unset_lock(l)
`, "False\nTrue\n")
	expectOut(t, `
from omp4py import *
n = omp_init_nest_lock()
print(omp_test_nest_lock(n))
print(omp_test_nest_lock(n))
omp_unset_nest_lock(n)
omp_unset_nest_lock(n)
print("done")
`, "1\n2\ndone\n")
}

func TestParallelRunDirect(t *testing.T) {
	// Drive the generated-code entry points directly, as transformed
	// code would.
	expectOut(t, `
from omp4py import *
seen = [0] * 4
def body():
    seen[omp_get_thread_num()] = 1
__omp.parallel_run(body, 4, False, False)
print(sum(seen))
`, "4\n")
}

func TestParallelRunWorksharing(t *testing.T) {
	expectOut(t, `
from omp4py import *
hits = [0] * 100
def body():
    b = __omp.for_bounds(0, 100, 1)
    __omp.for_init(b, "dynamic", 7, False, False)
    while __omp.for_next(b):
        for i in range(b[0], b[1]):
            hits[i] = hits[i] + 1
    __omp.for_end(b)
__omp.parallel_run(body, 4, False, False)
print(sum(hits), min(hits), max(hits))
`, "100 1 1\n")
}

func TestParallelRunReductionShape(t *testing.T) {
	// The exact code shape of Fig. 2/3 for the pi benchmark.
	expectOut(t, `
from omp4py import *
n = 10000
w = 1.0 / n
pi_value = 0.0
def parallel_body():
    global pi_value
    local_pi = 0.0
    b = __omp.for_bounds(0, n, 1)
    __omp.for_init(b, "", None, False, False)
    while __omp.for_next(b):
        for i in range(b[0], b[1]):
            local = (i + 0.5) * w
            local_pi += 4.0 / (1.0 + local * local)
    __omp.for_end(b)
    try:
        __omp.mutex_lock()
        pi_value += local_pi
    finally:
        __omp.mutex_unlock()
__omp.parallel_run(parallel_body, 4, False, False)
pi = pi_value * w
print(pi > 3.1415 and pi < 3.1417)
`, "True\n")
}

func TestGILSerializesButCompletes(t *testing.T) {
	var buf bytes.Buffer
	in := New(Options{Stdout: &buf, GIL: true, Layer: rt.LayerAtomic,
		Getenv: func(string) string { return "" }})
	err := in.RunSource(`
from omp4py import *
counter = [0]
def body():
    for i in range(1000):
        counter[0] = counter[0] + 1
__omp.parallel_run(body, 4, False, False)
print(counter[0])
`, "gil.py")
	if err != nil {
		t.Fatal(err)
	}
	// With the GIL each read-modify-write is protected by the lock
	// being held across the whole statement only if no yield occurs
	// mid-statement; counter[0] updates are single statements whose
	// read and write happen under one GIL hold between ticks, but a
	// yield can land between them, so we only assert completion and
	// bounds here.
	out := strings.TrimSpace(buf.String())
	if out == "" {
		t.Fatal("no output")
	}
}

func TestContendedAllocAccounting(t *testing.T) {
	var buf bytes.Buffer
	in := New(Options{Stdout: &buf, ContendedAlloc: true, Layer: rt.LayerAtomic,
		Getenv: func(string) string { return "" }})
	if err := in.RunSource("x = 0\nfor i in range(100):\n    x = x + i\n", "t.py"); err != nil {
		t.Fatal(err)
	}
	if in.AllocCount() == 0 {
		t.Fatal("contended-alloc counter never incremented")
	}
	in2 := New(Options{Stdout: &buf, Layer: rt.LayerAtomic, Getenv: func(string) string { return "" }})
	if err := in2.RunSource("x = 1 + 2\n", "t.py"); err != nil {
		t.Fatal(err)
	}
	if in2.AllocCount() != 0 {
		t.Fatal("accounting should be off by default")
	}
}

func TestCallFunctionFromGo(t *testing.T) {
	in := New(Options{Layer: rt.LayerAtomic, Getenv: func(string) string { return "" }})
	if err := in.RunSource("def double(x):\n    return x * 2\n", "t.py"); err != nil {
		t.Fatal(err)
	}
	v, err := in.CallFunction("double", int64(21))
	if err != nil {
		t.Fatal(err)
	}
	if v != int64(42) {
		t.Fatalf("double(21) = %v", v)
	}
	if _, err := in.CallFunction("missing"); err == nil {
		t.Fatal("expected NameError")
	}
}

func TestValueHelpers(t *testing.T) {
	if Repr(math.Inf(1)) != "inf" || Repr(math.Inf(-1)) != "-inf" {
		t.Fatal("inf repr")
	}
	if Repr(1.0) != "1.0" {
		t.Fatalf("float repr: %s", Repr(1.0))
	}
	if Str("x") != "x" || Repr("x") != "'x'" {
		t.Fatal("str/repr of string")
	}
	if TypeName(int64(1)) != "int" || TypeName(nil) != "NoneType" {
		t.Fatal("type names")
	}
	if !Truthy(int64(1)) || Truthy("") || Truthy(nil) {
		t.Fatal("truthiness")
	}
}

func TestStringFormatPercent(t *testing.T) {
	expectOut(t, `print("x=%s y=%d" % (1, 2))`, "x=1 y=2\n")
	expectOut(t, `print("v=%s" % 3.5)`, "v=3.5\n")
	expectOut(t, `print("100%%" % ())`, "100%\n")
}

func TestDeleteStatement(t *testing.T) {
	expectOut(t, `
l = [1, 2, 3]
del l[1]
print(l)
`, "[1, 3]\n")
	runErr(t, `
x = 5
del x
print(x)
`, "NameError")
}
