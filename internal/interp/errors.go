package interp

import (
	"fmt"

	"github.com/omp4go/omp4go/internal/minipy"
)

// PyError is a MiniPy exception in flight. Type is the Python
// exception class name used by except matching.
type PyError struct {
	Type string
	Msg  string
	Pos  minipy.Position
	// Value is the exception object when one was raised explicitly.
	Value *ExcValue
}

func (e *PyError) Error() string {
	if e.Pos.Line > 0 {
		return fmt.Sprintf("%s: %s (%s)", e.Type, e.Msg, e.Pos)
	}
	return fmt.Sprintf("%s: %s", e.Type, e.Msg)
}

// Matches reports whether the exception is caught by an except clause
// naming typeName. "Exception" and "BaseException" catch everything.
func (e *PyError) Matches(typeName string) bool {
	if typeName == "Exception" || typeName == "BaseException" {
		return true
	}
	if typeName == "ArithmeticError" && e.Type == "ZeroDivisionError" {
		return true
	}
	if typeName == "LookupError" && (e.Type == "IndexError" || e.Type == "KeyError") {
		return true
	}
	return e.Type == typeName
}

func typeErrorf(pos minipy.Position, format string, args ...any) *PyError {
	return &PyError{Type: "TypeError", Msg: fmt.Sprintf(format, args...), Pos: pos}
}

func valueErrorf(pos minipy.Position, format string, args ...any) *PyError {
	return &PyError{Type: "ValueError", Msg: fmt.Sprintf(format, args...), Pos: pos}
}

func nameErrorf(pos minipy.Position, format string, args ...any) *PyError {
	return &PyError{Type: "NameError", Msg: fmt.Sprintf(format, args...), Pos: pos}
}

// control-flow signals travel as errors so the tree-walker can unwind
// through arbitrary statement nesting.

type breakSignal struct{}

func (breakSignal) Error() string { return "break outside loop" }

type continueSignal struct{}

func (continueSignal) Error() string { return "continue outside loop" }

type returnSignal struct{ v Value }

func (returnSignal) Error() string { return "return outside function" }
