package interp

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/omp4go/omp4go/internal/minipy"
)

// Budget bounds one execution of tenant-supplied code: a step budget
// (the interpreter's CPU-time proxy), an allocation budget (the boxed
// allocation count stands in for memory), a wall-clock deadline, and
// an optional cancellation channel. The zero value of each field means
// "unlimited". The execution service (internal/serve) arms a budget
// around every run so a runaway program is killed with a typed error
// instead of wedging a worker.
type Budget struct {
	// MaxSteps bounds interpreter steps (statements, expressions and
	// calls across every thread of the program). 0 = unlimited.
	MaxSteps int64
	// MaxAllocs bounds accounted boxed allocations. 0 = unlimited.
	MaxAllocs int64
	// Deadline is the wall-clock cutoff. Zero = none.
	Deadline time.Time
	// Done cancels the execution when it becomes receivable (for
	// example a request context's Done channel). Nil = none.
	Done <-chan struct{}
}

// BudgetError reports a budget violation. It is deliberately not a
// *PyError: except clauses cannot catch it, so a tenant program cannot
// swallow its own kill and keep looping. Pos is the source position of
// the step that observed the violation.
type BudgetError struct {
	// Kind is "steps", "allocs", "deadline" or "canceled".
	Kind string
	Msg  string
	Pos  minipy.Position
}

func (e *BudgetError) Error() string {
	if e.Pos.Line > 0 {
		return fmt.Sprintf("execution budget exceeded (%s): %s (%s)", e.Kind, e.Msg, e.Pos)
	}
	return fmt.Sprintf("execution budget exceeded (%s): %s", e.Kind, e.Msg)
}

// budgetStride is how many interpreter steps a thread runs between
// budget checks: large enough to keep the shared counter off the hot
// path, small enough that kills land within a few thousand steps.
const budgetStride = 64

// budgetState is the armed form of a Budget, shared by every thread of
// the interpreter. killed is sticky: once any thread observes a
// violation, every subsequent check on every thread fails with the
// same kind, so catch-and-retry loops die too.
type budgetState struct {
	maxSteps  int64
	maxAllocs int64
	deadline  time.Time
	done      <-chan struct{}
	steps     atomic.Int64
	allocs    atomic.Int64
	killed    atomic.Pointer[BudgetError]
}

// SetBudget arms (or replaces) the interpreter's execution budget.
// Counters start from zero; pass a fresh budget per run.
func (in *Interp) SetBudget(b Budget) {
	in.budget.Store(&budgetState{
		maxSteps:  b.MaxSteps,
		maxAllocs: b.MaxAllocs,
		deadline:  b.Deadline,
		done:      b.Done,
	})
}

// ClearBudget disarms the budget.
func (in *Interp) ClearBudget() { in.budget.Store(nil) }

// BudgetSteps returns the steps charged against the current budget (0
// when no budget is armed). Flushes happen every budgetStride steps
// per thread, so the value trails the true count slightly.
func (in *Interp) BudgetSteps() int64 {
	if b := in.budget.Load(); b != nil {
		return b.steps.Load()
	}
	return 0
}

// BudgetAllocs returns the boxed allocations charged against the
// current budget (0 when no budget is armed or MaxAllocs is 0).
func (in *Interp) BudgetAllocs() int64 {
	if b := in.budget.Load(); b != nil {
		return b.allocs.Load()
	}
	return 0
}

// kill records the first violation; later racers adopt it so the whole
// program reports one consistent kind.
func (b *budgetState) kill(kind, msg string) *BudgetError {
	e := &BudgetError{Kind: kind, Msg: msg}
	if !b.killed.CompareAndSwap(nil, e) {
		e = b.killed.Load()
	}
	return e
}

// at returns a positioned copy: each thread reports the location it
// was executing when it observed the kill.
func (e *BudgetError) at(pos minipy.Position) *BudgetError {
	return &BudgetError{Kind: e.Kind, Msg: e.Msg, Pos: pos}
}

// charge adds n steps and re-checks every limit. Called once per
// budgetStride steps per thread.
func (b *budgetState) charge(n int64, pos minipy.Position) error {
	if e := b.killed.Load(); e != nil {
		return e.at(pos)
	}
	steps := b.steps.Add(n)
	if b.maxSteps > 0 && steps > b.maxSteps {
		return b.kill("steps", fmt.Sprintf("step budget of %d exhausted", b.maxSteps)).at(pos)
	}
	if b.maxAllocs > 0 && b.allocs.Load() > b.maxAllocs {
		return b.kill("allocs", fmt.Sprintf("allocation budget of %d exhausted", b.maxAllocs)).at(pos)
	}
	if b.done != nil {
		select {
		case <-b.done:
			return b.kill("canceled", "execution canceled").at(pos)
		default:
		}
	}
	if !b.deadline.IsZero() && time.Now().After(b.deadline) {
		return b.kill("deadline", "wall-clock limit exceeded").at(pos)
	}
	return nil
}
