// Package interp implements the MiniPy tree-walking interpreter: the
// stand-in for the free-threaded CPython interpreter that OMP4Py's
// Pure and Hybrid modes execute on. Values are boxed, environments
// are map-based, containers take per-object locks on structural
// mutation, and an optional GIL plus a shared allocation-accounting
// counter model the threading behaviour of CPython (GIL-enabled and
// free-threaded, respectively).
package interp

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/omp4go/omp4go/internal/minipy"
)

// Value is any MiniPy runtime value: nil (None), bool, int64,
// float64, string, or one of the reference types below.
type Value = any

// List is a MiniPy list with storage strategies: a list holding only
// floats (or only ints) stores them unboxed, and is promoted to
// generic boxed storage the first time a value of another type is
// inserted. This mirrors the specialization that lets the compiled
// modes approach native array performance while the interpreter pays
// boxing costs on every access.
//
// Structural mutations (append, pop, resize) take the per-object
// lock, as free-threaded CPython does; element reads and writes go
// straight to the slice, so disjoint-index parallel updates proceed
// without contention.
type List struct {
	mu   sync.Mutex
	kind listKind
	fs   []float64
	is   []int64
	gs   []Value
}

type listKind int8

const (
	listEmpty listKind = iota
	listFloat
	listInt
	listGeneric
)

// NewList creates a list from boxed values, choosing a specialized
// representation when all elements share a numeric type.
func NewList(vals []Value) *List {
	l := &List{}
	if len(vals) == 0 {
		return l
	}
	allF, allI := true, true
	for _, v := range vals {
		switch v.(type) {
		case float64:
			allI = false
		case int64:
			allF = false
		default:
			allF, allI = false, false
		}
	}
	switch {
	case allF:
		l.kind = listFloat
		l.fs = make([]float64, len(vals))
		for i, v := range vals {
			l.fs[i] = v.(float64)
		}
	case allI:
		l.kind = listInt
		l.is = make([]int64, len(vals))
		for i, v := range vals {
			l.is[i] = v.(int64)
		}
	default:
		l.kind = listGeneric
		l.gs = append([]Value(nil), vals...)
	}
	return l
}

// NewFloatList creates a float-specialized list of length n filled
// with fill.
func NewFloatList(n int, fill float64) *List {
	fs := make([]float64, n)
	if fill != 0 {
		for i := range fs {
			fs[i] = fill
		}
	}
	return &List{kind: listFloat, fs: fs}
}

// AdoptFloats wraps an existing float slice as a float-specialized
// list without copying (bench inputs generated in Go).
func AdoptFloats(fs []float64) *List { return &List{kind: listFloat, fs: fs} }

// AdoptInts wraps an existing int slice as an int-specialized list
// without copying.
func AdoptInts(is []int64) *List { return &List{kind: listInt, is: is} }

// NewIntList creates an int-specialized list of length n filled with
// fill.
func NewIntList(n int, fill int64) *List {
	is := make([]int64, n)
	if fill != 0 {
		for i := range is {
			is[i] = fill
		}
	}
	return &List{kind: listInt, is: is}
}

// Kind reports the current storage strategy (for tests and the
// compiler's fast paths).
func (l *List) Kind() string {
	switch l.kind {
	case listEmpty:
		return "empty"
	case listFloat:
		return "float"
	case listInt:
		return "int"
	}
	return "generic"
}

// Len returns the number of elements.
func (l *List) Len() int {
	switch l.kind {
	case listFloat:
		return len(l.fs)
	case listInt:
		return len(l.is)
	case listGeneric:
		return len(l.gs)
	}
	return 0
}

// Get returns the element at index i (already bounds-checked,
// non-negative).
func (l *List) Get(i int) Value {
	switch l.kind {
	case listFloat:
		return l.fs[i]
	case listInt:
		return l.is[i]
	default:
		return l.gs[i]
	}
}

// Set stores v at index i, promoting the storage if v does not fit
// the current specialization.
func (l *List) Set(i int, v Value) {
	switch l.kind {
	case listFloat:
		if f, ok := v.(float64); ok {
			l.fs[i] = f
			return
		}
	case listInt:
		if n, ok := v.(int64); ok {
			l.is[i] = n
			return
		}
	case listGeneric:
		l.gs[i] = v
		return
	}
	l.promote()
	l.gs[i] = v
}

// FloatAt is the compiled fast path: it returns the unboxed float at
// i when the list uses float storage.
func (l *List) FloatAt(i int) (float64, bool) {
	if l.kind == listFloat {
		return l.fs[i], true
	}
	return 0, false
}

// SetFloatAt is the compiled fast path for float stores.
func (l *List) SetFloatAt(i int, f float64) bool {
	if l.kind == listFloat {
		l.fs[i] = f
		return true
	}
	return false
}

// IntAt is the compiled fast path for int loads.
func (l *List) IntAt(i int) (int64, bool) {
	if l.kind == listInt {
		return l.is[i], true
	}
	return 0, false
}

// SetIntAt is the compiled fast path for int stores.
func (l *List) SetIntAt(i int, n int64) bool {
	if l.kind == listInt {
		l.is[i] = n
		return true
	}
	return false
}

// promote converts to generic storage. Callers must ensure no
// concurrent structural mutation (single-threaded setup phase or
// caller-held lock); element races after promotion are the user's
// data race, as in CPython.
func (l *List) promote() {
	switch l.kind {
	case listFloat:
		l.gs = make([]Value, len(l.fs))
		for i, f := range l.fs {
			l.gs[i] = f
		}
		l.fs = nil
	case listInt:
		l.gs = make([]Value, len(l.is))
		for i, n := range l.is {
			l.gs[i] = n
		}
		l.is = nil
	case listEmpty:
		l.gs = []Value{}
	}
	l.kind = listGeneric
}

// Append adds v at the end under the per-object lock.
func (l *List) Append(v Value) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch l.kind {
	case listEmpty:
		switch t := v.(type) {
		case float64:
			l.kind = listFloat
			l.fs = append(l.fs, t)
			return
		case int64:
			l.kind = listInt
			l.is = append(l.is, t)
			return
		default:
			l.kind = listGeneric
			l.gs = append(l.gs, v)
			return
		}
	case listFloat:
		if f, ok := v.(float64); ok {
			l.fs = append(l.fs, f)
			return
		}
	case listInt:
		if n, ok := v.(int64); ok {
			l.is = append(l.is, n)
			return
		}
	case listGeneric:
		l.gs = append(l.gs, v)
		return
	}
	l.promote()
	l.gs = append(l.gs, v)
}

// Pop removes and returns the element at index i (or the last when i
// is -1), under the per-object lock.
func (l *List) Pop(i int) (Value, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.Len()
	if n == 0 {
		return nil, false
	}
	if i < 0 {
		i += n
	}
	if i < 0 || i >= n {
		return nil, false
	}
	v := l.Get(i)
	switch l.kind {
	case listFloat:
		l.fs = append(l.fs[:i], l.fs[i+1:]...)
	case listInt:
		l.is = append(l.is[:i], l.is[i+1:]...)
	case listGeneric:
		l.gs = append(l.gs[:i], l.gs[i+1:]...)
	}
	return v, true
}

// Insert places v before index i under the per-object lock.
func (l *List) Insert(i int, v Value) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.Len()
	if i < 0 {
		i += n
		if i < 0 {
			i = 0
		}
	}
	if i > n {
		i = n
	}
	if l.kind != listGeneric {
		l.promote()
	}
	l.gs = append(l.gs, nil)
	copy(l.gs[i+1:], l.gs[i:])
	l.gs[i] = v
}

// Slice returns a new list with elements [lo, hi) by step.
func (l *List) Slice(lo, hi, step int) *List {
	out := &List{}
	if step > 0 {
		for i := lo; i < hi; i += step {
			out.Append(l.Get(i))
		}
	} else if step < 0 {
		for i := lo; i > hi; i += step {
			out.Append(l.Get(i))
		}
	}
	return out
}

// Values returns the elements as boxed values (a fresh slice).
func (l *List) Values() []Value {
	out := make([]Value, l.Len())
	for i := range out {
		out[i] = l.Get(i)
	}
	return out
}

// SortFloats sorts in place when float-specialized; generic lists
// sort with the universal comparison (numbers, then strings).
func (l *List) SortInPlace() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch l.kind {
	case listFloat:
		sort.Float64s(l.fs)
		return nil
	case listInt:
		sort.Slice(l.is, func(a, b int) bool { return l.is[a] < l.is[b] })
		return nil
	case listGeneric:
		var sortErr error
		sort.SliceStable(l.gs, func(a, b int) bool {
			less, err := valueLess(l.gs[a], l.gs[b])
			if err != nil && sortErr == nil {
				sortErr = err
			}
			return less
		})
		return sortErr
	}
	return nil
}

// FloatData exposes the unboxed float storage (compiled kernels and
// the MPI bridge read it directly). The boolean is false for other
// storage kinds.
func (l *List) FloatData() ([]float64, bool) {
	if l.kind == listFloat {
		return l.fs, true
	}
	return nil, false
}

// IntData exposes the unboxed int storage.
func (l *List) IntData() ([]int64, bool) {
	if l.kind == listInt {
		return l.is, true
	}
	return nil, false
}

// Tuple is an immutable value sequence.
type Tuple struct {
	Elts []Value
}

// Dict is a MiniPy dict preserving insertion order, guarded by a
// per-object lock.
type Dict struct {
	mu      sync.Mutex
	idx     map[any]int
	entries []dictEntry
	live    int
}

type dictEntry struct {
	key    any
	keyVal Value
	val    Value
	dead   bool
}

// NewDict creates an empty dict.
func NewDict() *Dict {
	return &Dict{idx: make(map[any]int)}
}

// hashKey converts a value into a Go-comparable dict key. Tuples
// encode recursively; unhashable values error.
func hashKey(v Value) (any, error) {
	switch t := v.(type) {
	case nil:
		return "\x00none", nil
	case bool:
		// Python: True == 1; we keep bools distinct from ints, which
		// the benchmarks never rely on.
		return t, nil
	case int64:
		return t, nil
	case float64:
		// hash(1.0) == hash(1) in Python: integral floats collapse.
		if t == math.Trunc(t) && !math.IsInf(t, 0) && math.Abs(t) < 1e18 {
			return int64(t), nil
		}
		return t, nil
	case string:
		return "\x00s" + t, nil
	case *Tuple:
		var b strings.Builder
		b.WriteString("\x00t(")
		for _, e := range t.Elts {
			k, err := hashKey(e)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(&b, "%T:%v;", k, k)
		}
		b.WriteString(")")
		return b.String(), nil
	}
	return nil, &PyError{Type: "TypeError", Msg: fmt.Sprintf("unhashable type: %s", TypeName(v))}
}

// Get looks up a key.
func (d *Dict) Get(key Value) (Value, bool, error) {
	k, err := hashKey(key)
	if err != nil {
		return nil, false, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if i, ok := d.idx[k]; ok {
		return d.entries[i].val, true, nil
	}
	return nil, false, nil
}

// Set stores key → val.
func (d *Dict) Set(key, val Value) error {
	k, err := hashKey(key)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if i, ok := d.idx[k]; ok {
		d.entries[i].val = val
		return nil
	}
	d.idx[k] = len(d.entries)
	d.entries = append(d.entries, dictEntry{key: k, keyVal: key, val: val})
	d.live++
	return nil
}

// Delete removes a key, reporting whether it was present.
func (d *Dict) Delete(key Value) (bool, error) {
	k, err := hashKey(key)
	if err != nil {
		return false, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	i, ok := d.idx[k]
	if !ok {
		return false, nil
	}
	d.entries[i].dead = true
	delete(d.idx, k)
	d.live--
	if d.live*4 < len(d.entries) && len(d.entries) > 16 {
		d.compact()
	}
	return true, nil
}

func (d *Dict) compact() {
	out := d.entries[:0]
	for _, e := range d.entries {
		if !e.dead {
			d.idx[e.key] = len(out)
			out = append(out, e)
		}
	}
	d.entries = out
}

// Len returns the number of live entries.
func (d *Dict) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.live
}

// Items returns the live (key, value) pairs in insertion order.
func (d *Dict) Items() [][2]Value {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([][2]Value, 0, d.live)
	for _, e := range d.entries {
		if !e.dead {
			out = append(out, [2]Value{e.keyVal, e.val})
		}
	}
	return out
}

// Set is a MiniPy set, guarded by a per-object lock.
type Set struct {
	mu      sync.Mutex
	idx     map[any]int
	entries []dictEntry
	live    int
}

// NewSet creates an empty set.
func NewSet() *Set { return &Set{idx: make(map[any]int)} }

// Add inserts v.
func (s *Set) Add(v Value) error {
	k, err := hashKey(v)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.idx[k]; ok {
		return nil
	}
	s.idx[k] = len(s.entries)
	s.entries = append(s.entries, dictEntry{key: k, keyVal: v})
	s.live++
	return nil
}

// Has reports membership.
func (s *Set) Has(v Value) (bool, error) {
	k, err := hashKey(v)
	if err != nil {
		return false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.idx[k]
	return ok, nil
}

// Remove deletes v, reporting whether it was present.
func (s *Set) Remove(v Value) (bool, error) {
	k, err := hashKey(v)
	if err != nil {
		return false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.idx[k]
	if !ok {
		return false, nil
	}
	s.entries[i].dead = true
	delete(s.idx, k)
	s.live--
	return true, nil
}

// Len returns the number of elements.
func (s *Set) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live
}

// Values returns the elements in insertion order.
func (s *Set) Values() []Value {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Value, 0, s.live)
	for _, e := range s.entries {
		if !e.dead {
			out = append(out, e.keyVal)
		}
	}
	return out
}

// Range is the value of range(...); iteration is lazy.
type Range struct {
	Start, Stop, Step int64
}

// Len returns the number of values the range yields.
func (r *Range) Len() int64 {
	if r.Step > 0 {
		if r.Stop <= r.Start {
			return 0
		}
		return (r.Stop - r.Start + r.Step - 1) / r.Step
	}
	if r.Step < 0 {
		if r.Stop >= r.Start {
			return 0
		}
		return (r.Start - r.Stop - r.Step - 1) / (-r.Step)
	}
	return 0
}

// Function is a user-defined MiniPy function (a closure over its
// defining environment).
type Function struct {
	Name    string
	Params  []minipy.Param
	Body    []minipy.Stmt
	Env     *Env
	Scope   *minipy.ScopeInfo
	Globals *Env // module globals of the defining module
	// Compiled, when non-nil, bypasses the tree-walker (installed by
	// the compile package for Compiled/CompiledDT modes).
	Compiled func(th *Thread, args []Value) (Value, error)
	// Defaults are evaluated at definition time, as in Python.
	Defaults []Value
}

// Builtin is a function implemented in Go.
type Builtin struct {
	Name string
	// Fn receives the calling thread (for OMP context, GIL and
	// allocation accounting) and the positional arguments.
	Fn func(th *Thread, args []Value) (Value, error)
	// FnKw, when set, handles calls that pass keyword arguments.
	FnKw func(th *Thread, args []Value, kwargs map[string]Value) (Value, error)
	// ReleasesGIL marks runtime functions that block (barriers, task
	// waits): the interpreter drops the GIL around the call the way
	// CPython extensions do.
	ReleasesGIL bool
}

// Module is a builtin module value with attributes.
type Module struct {
	Name  string
	Attrs map[string]Value
}

// BoundMethod pairs a receiver with a method implemented in Go.
type BoundMethod struct {
	Recv Value
	Name string
	Fn   func(th *Thread, recv Value, args []Value) (Value, error)
}

// TypeName returns the Python-style type name of a value.
func TypeName(v Value) string {
	switch v.(type) {
	case nil:
		return "NoneType"
	case bool:
		return "bool"
	case int64:
		return "int"
	case float64:
		return "float"
	case string:
		return "str"
	case *List:
		return "list"
	case *Tuple:
		return "tuple"
	case *Dict:
		return "dict"
	case *Set:
		return "set"
	case *Range:
		return "range"
	case *Function:
		return "function"
	case *Builtin:
		return "builtin_function_or_method"
	case *BoundMethod:
		return "builtin_function_or_method"
	case *Module:
		return "module"
	case *ExcValue:
		return "exception"
	}
	return fmt.Sprintf("%T", v)
}

// Truthy implements Python truthiness.
func Truthy(v Value) bool {
	switch t := v.(type) {
	case nil:
		return false
	case bool:
		return t
	case int64:
		return t != 0
	case float64:
		return t != 0
	case string:
		return t != ""
	case *List:
		return t.Len() > 0
	case *Tuple:
		return len(t.Elts) > 0
	case *Dict:
		return t.Len() > 0
	case *Set:
		return t.Len() > 0
	case *Range:
		return t.Len() > 0
	}
	return true
}

// Repr renders a value the way Python's repr does.
func Repr(v Value) string {
	switch t := v.(type) {
	case nil:
		return "None"
	case bool:
		if t {
			return "True"
		}
		return "False"
	case int64:
		return strconv.FormatInt(t, 10)
	case float64:
		return formatFloat(t)
	case string:
		return "'" + strings.ReplaceAll(t, "'", "\\'") + "'"
	case *List:
		parts := make([]string, t.Len())
		for i := 0; i < t.Len(); i++ {
			parts[i] = Repr(t.Get(i))
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case *Tuple:
		parts := make([]string, len(t.Elts))
		for i, e := range t.Elts {
			parts[i] = Repr(e)
		}
		if len(parts) == 1 {
			return "(" + parts[0] + ",)"
		}
		return "(" + strings.Join(parts, ", ") + ")"
	case *Dict:
		items := t.Items()
		parts := make([]string, len(items))
		for i, kv := range items {
			parts[i] = Repr(kv[0]) + ": " + Repr(kv[1])
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case *Set:
		vals := t.Values()
		if len(vals) == 0 {
			return "set()"
		}
		parts := make([]string, len(vals))
		for i, e := range vals {
			parts[i] = Repr(e)
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case *Range:
		if t.Step == 1 {
			return fmt.Sprintf("range(%d, %d)", t.Start, t.Stop)
		}
		return fmt.Sprintf("range(%d, %d, %d)", t.Start, t.Stop, t.Step)
	case *Function:
		return "<function " + t.Name + ">"
	case *Builtin:
		return "<built-in function " + t.Name + ">"
	case *BoundMethod:
		return "<built-in method " + t.Name + ">"
	case *Module:
		return "<module '" + t.Name + "'>"
	case *ExcValue:
		return t.Type + "(" + Repr(t.Msg) + ")"
	}
	return fmt.Sprintf("<%T>", v)
}

// Str renders a value the way Python's str does (strings unquoted).
func Str(v Value) string {
	if s, ok := v.(string); ok {
		return s
	}
	return Repr(v)
}

func formatFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "inf"
	}
	if math.IsInf(f, -1) {
		return "-inf"
	}
	if math.IsNaN(f) {
		return "nan"
	}
	s := strconv.FormatFloat(f, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// ExcValue is an exception object created by ValueError("...") etc.
type ExcValue struct {
	Type string
	Msg  Value
}
