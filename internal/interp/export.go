package interp

import "github.com/omp4go/omp4go/internal/minipy"

// This file exports the operator semantics to the compile package,
// which reuses them for the boxed paths of compiled code (Cython,
// likewise, falls back to C-API object protocol calls wherever static
// types are unknown).

// BinaryOp applies a MiniPy binary operator to boxed values.
func (th *Thread) BinaryOp(op string, l, r Value, pos minipy.Position) (Value, error) {
	return th.binaryOp(op, l, r, pos)
}

// UnaryOpValue applies a unary operator to a boxed value.
func (th *Thread) UnaryOpValue(op string, x Value, pos minipy.Position) (Value, error) {
	return th.unaryOp(op, x, pos)
}

// CompareValues applies one comparison operator.
func (th *Thread) CompareValues(op string, l, r Value, pos minipy.Position) (bool, error) {
	return th.compareOp(op, l, r, pos)
}

// GetItem implements container[index].
func (th *Thread) GetItem(cont, idx Value, pos minipy.Position) (Value, error) {
	return th.getItem(cont, idx, pos)
}

// SetItem implements container[index] = value.
func (th *Thread) SetItem(cont, idx, v Value, pos minipy.Position) error {
	return th.setItem(cont, idx, v, pos)
}

// GetAttr implements obj.name.
func (th *Thread) GetAttr(obj Value, name string, pos minipy.Position) (Value, error) {
	return th.getAttr(obj, name, pos)
}

// IterValues materializes an iterable.
func IterValues(v Value) ([]Value, error) { return iterValues(v) }

// ValueEqual implements Python ==.
func ValueEqual(l, r Value) bool { return valueEqual(l, r) }

// AsInt extracts an int64 from an int or bool value.
func AsInt(v Value) (int64, bool) { return asInt(v) }

// AsFloat extracts a float64 from any numeric value.
func AsFloat(v Value) (float64, bool) { return asFloat(v) }

// NewPyError builds a MiniPy exception (compiled code raises the
// same exception values the interpreter does).
func NewPyError(typ, msg string, pos minipy.Position) error {
	return &PyError{Type: typ, Msg: msg, Pos: pos}
}

// Account records a boxed allocation (compiled boxed paths share the
// interpreter's contention model accounting).
func (th *Thread) Account() { th.account() }

// RaiseValue converts a raised value into the exception error the
// raise statement produces.
func RaiseValue(v Value, pos minipy.Position) error {
	switch e := v.(type) {
	case *ExcValue:
		return &PyError{Type: e.Type, Msg: Str(e.Msg), Pos: pos, Value: e}
	case *Builtin:
		return &PyError{Type: e.Name, Msg: "", Pos: pos}
	case string:
		return &PyError{Type: "Exception", Msg: e, Pos: pos}
	}
	return typeErrorf(pos, "exceptions must derive from BaseException")
}

// DeleteItem implements del container[index].
func DeleteItem(cont, idx Value, pos minipy.Position) error {
	switch c := cont.(type) {
	case *Dict:
		ok, err := c.Delete(idx)
		if err != nil {
			return err
		}
		if !ok {
			return &PyError{Type: "KeyError", Msg: Repr(idx), Pos: pos}
		}
		return nil
	case *List:
		i, ok := asInt(idx)
		if !ok {
			return typeErrorf(pos, "list indices must be integers")
		}
		if _, ok := c.Pop(int(i)); !ok {
			return &PyError{Type: "IndexError", Msg: "list index out of range", Pos: pos}
		}
		return nil
	}
	return typeErrorf(pos, "cannot delete item of %s", TypeName(cont))
}

// SetAttrValue implements obj.name = v (module attributes only, as
// in the interpreter).
func SetAttrValue(obj Value, name string, v Value, pos minipy.Position) error {
	if m, ok := obj.(*Module); ok {
		m.Attrs[name] = v
		return nil
	}
	return typeErrorf(pos, "cannot set attribute %q on %s", name, TypeName(obj))
}

// ImportModule resolves a builtin module by name.
func (in *Interp) ImportModule(name string) (Value, error) {
	if m, ok := in.modules[name]; ok {
		return m, nil
	}
	return nil, &PyError{Type: "ImportError", Msg: "no module named '" + name + "'"}
}

// SetCompileHook installs a callback invoked whenever a function
// object is created from a def statement; the compile package uses it
// to attach precompiled entry points to top-level functions.
func (in *Interp) SetCompileHook(hook func(fd *minipy.FuncDef, fn *Function)) {
	in.compileHook = hook
}

// MakeCompiledFunction builds a function value whose execution is
// fully delegated to entry (used by the compiler for nested function
// definitions).
func MakeCompiledFunction(name string, params []minipy.Param, defaults []Value,
	entry func(th *Thread, args []Value) (Value, error)) *Function {
	return &Function{Name: name, Params: params, Defaults: defaults, Compiled: entry}
}
