package bench

import (
	"math"
	"testing"
)

// numericalNames are the seven Fig. 5 benchmarks of the paper, the
// subject of the compiled-kernel differential matrix.
var numericalNames = []string{"fft", "jacobi", "lu", "md", "pi", "qsort", "bfs"}

// taskSchedEnv pins OMP4GO_TASK_SCHED so the matrix covers both team
// task schedulers (work-stealing deques and the shared list queue).
func taskSchedEnv(mode string) func(string) string {
	return func(k string) string {
		if k == "OMP4GO_TASK_SCHED" {
			return mode
		}
		return ""
	}
}

// TestKernelDifferentialMatrix runs every numerical benchmark in
// CompiledDT with kernels on, kernels off (the bridge baseline), and
// in the Hybrid interpreter tier, across 1/4/8 threads and both task
// schedulers. Single-threaded runs must be bit-identical across all
// three configurations (one member, one merge — no reduction-order
// freedom). Multi-threaded runs must agree within the benchmark's
// checksum tolerance: members merge their reduction partials in
// arrival order, so the last ULPs of a float sum legitimately vary
// between runs of the *same* configuration; the partition itself is
// identical (see rt's TestStaticBoundsMatchesLoopBounds and the
// compile tier's kernel tests for the exact-partition guarantees).
func TestKernelDifferentialMatrix(t *testing.T) {
	for _, name := range numericalNames {
		b := Registry[name]
		for _, sched := range []string{"steal", "list"} {
			for _, threads := range []int{1, 4, 8} {
				cfg := RunConfig{Threads: threads, Args: smallArgs[name], Getenv: taskSchedEnv(sched)}

				on := cfg
				run := func(label string, c RunConfig, mode Mode) (float64, bool) {
					res, err := Run(mode, name, c)
					if err != nil {
						t.Errorf("%s/%s/%dt/%s: %v", name, label, threads, sched, err)
						return 0, false
					}
					return res.Checksum, true
				}
				kOn, ok1 := run("kernels-on", on, CompiledDT)
				off := cfg
				off.KernelsOff = true
				kOff, ok2 := run("kernels-off", off, CompiledDT)
				hyb, ok3 := run("hybrid", cfg, Hybrid)
				if !ok1 || !ok2 || !ok3 {
					continue
				}

				if threads == 1 {
					if kOn != kOff || kOn != hyb {
						t.Errorf("%s/1t/%s: single-thread results differ: kernels-on=%v kernels-off=%v hybrid=%v",
							name, sched, kOn, kOff, hyb)
					}
					continue
				}
				for _, pair := range [][2]float64{{kOn, kOff}, {kOn, hyb}} {
					if !matrixAgree(pair[0], pair[1], b.Tolerance) {
						t.Errorf("%s/%dt/%s: results diverge beyond tolerance %g: kernels-on=%v kernels-off=%v hybrid=%v",
							name, threads, sched, b.Tolerance, kOn, kOff, hyb)
						break
					}
				}
			}
		}
	}
}

func matrixAgree(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(b))
}
