package bench

import (
	"strings"
	"testing"

	"github.com/omp4go/omp4go/internal/rt"
)

func tinyOpts(name string) FigureOptions {
	return FigureOptions{Threads: []int{1, 2}, Args: smallArgs[name]}
}

func TestFigure5SmallSweep(t *testing.T) {
	fig, err := Figure5("pi", tinyOpts("pi"))
	if err != nil {
		t.Fatal(err)
	}
	// Four OMP4Py modes + PyOMP (pi is supported).
	if len(fig.Series) != 5 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 2 {
			t.Fatalf("%s: %d points", s.Label, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Seconds <= 0 {
				t.Fatalf("%s: non-positive time", s.Label)
			}
		}
	}
	out := fig.Render()
	for _, label := range []string{"Pure", "Hybrid", "Compiled", "CompiledDT", "PyOMP", "threads"} {
		if !strings.Contains(out, label) {
			t.Errorf("render missing %q:\n%s", label, out)
		}
	}
}

func TestFigure5ExcludesPyOMPWhereUnsupported(t *testing.T) {
	fig, err := Figure5("qsort", tinyOpts("qsort"))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		if s.Label == "PyOMP" {
			t.Fatal("qsort must not have a PyOMP series (§IV-A)")
		}
	}
	if _, err := Figure5("wordcount", tinyOpts("wordcount")); err == nil {
		t.Fatal("wordcount is not a Fig. 5 benchmark")
	}
}

func TestFigure6SmallSweep(t *testing.T) {
	fig, err := Figure6("wordcount", tinyOpts("wordcount"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d (PyOMP cannot run wordcount)", len(fig.Series))
	}
}

func TestFigure7SpeedupsSweep(t *testing.T) {
	fig, err := Figure7("graphic", []Mode{Hybrid}, 30, tinyOpts("graphic"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 { // static/dynamic/guided for one mode
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		for _, p := range s.Points {
			if p.Seconds <= 0 {
				t.Fatalf("%s: non-positive speedup", s.Label)
			}
		}
	}
}

func TestFigure8SmallSweep(t *testing.T) {
	fig, err := Figure8(Figure8Options{
		Nodes: []int{1, 2}, ThreadsPerNode: 2, N: 40, Iters: 3,
		Modes: []Mode{CompiledDT},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 1 || len(fig.Series[0].Points) != 2 {
		t.Fatalf("figure shape: %+v", fig)
	}
}

func TestSpeedupsDerivation(t *testing.T) {
	fig := &Figure{
		XLabel: "threads",
		Series: []Series{
			{Label: "A", Points: []Point{{1, 8}, {2, 4}, {4, 2}}},
			{Label: "B", Points: []Point{{1, 16}, {2, 8}, {4, 4}}},
		},
	}
	sp := fig.Speedups("")
	if sp.Series[0].Points[2].Seconds != 4 {
		t.Fatalf("self speedup = %v", sp.Series[0].Points[2].Seconds)
	}
	rel := fig.Speedups("A")
	if rel.Series[1].Points[0].Seconds != 0.5 {
		t.Fatalf("relative speedup = %v", rel.Series[1].Points[0].Seconds)
	}
}

func TestMeasureAveragesRepetitions(t *testing.T) {
	sec, err := measure(Hybrid, "pi", 2, FigureOptions{
		Threads: []int{2}, Args: smallArgs["pi"], Repetitions: 2,
	}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if sec <= 0 {
		t.Fatal("non-positive mean")
	}
}

func TestFigureOptionsDefaults(t *testing.T) {
	o := FigureOptions{}.withDefaults()
	if len(o.Threads) != 6 || o.Repetitions != 1 {
		t.Fatalf("defaults: %+v", o)
	}
	if o.Schedule != (rt.Schedule{}) {
		t.Fatal("schedule default should be zero")
	}
}
