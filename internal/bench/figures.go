package bench

import (
	"fmt"
	"strings"
	"time"

	"github.com/omp4go/omp4go/internal/directive"
	"github.com/omp4go/omp4go/internal/mpi"
	"github.com/omp4go/omp4go/internal/pyomp"
	"github.com/omp4go/omp4go/internal/rt"
)

// Point is one measurement of a series.
type Point struct {
	X       int // thread count (Figs. 5-7) or node count (Fig. 8)
	Seconds float64
}

// Series is one line of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is the dataset behind one paper figure.
type Figure struct {
	Title  string
	XLabel string
	Series []Series
}

// Render prints the figure as an aligned text table (one row per X,
// one column per series).
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	fmt.Fprintf(&b, "%-10s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %14s", s.Label)
	}
	b.WriteByte('\n')
	if len(f.Series) == 0 {
		return b.String()
	}
	for i, p := range f.Series[0].Points {
		fmt.Fprintf(&b, "%-10d", p.X)
		for _, s := range f.Series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, " %14.4f", s.Points[i].Seconds)
			} else {
				fmt.Fprintf(&b, " %14s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DefaultThreadCounts is the artifact's sweep: 1, 2, 4, 8, 16, 32.
var DefaultThreadCounts = []int{1, 2, 4, 8, 16, 32}

// FigureOptions tune a sweep.
type FigureOptions struct {
	Threads []int
	Args    []int64 // nil = the benchmark's DefaultArgs
	// Repetitions averages measurements (the paper averages 10).
	Repetitions int
	// Schedule applies to schedule(runtime) benchmarks.
	Schedule rt.Schedule
}

func (o FigureOptions) withDefaults() FigureOptions {
	if len(o.Threads) == 0 {
		o.Threads = DefaultThreadCounts
	}
	if o.Repetitions < 1 {
		o.Repetitions = 1
	}
	return o
}

// measure runs one configuration Repetitions times and returns the
// mean seconds.
func measure(mode Mode, name string, threads int, o FigureOptions) (float64, error) {
	total := 0.0
	for rep := 0; rep < o.Repetitions; rep++ {
		res, err := Run(mode, name, RunConfig{
			Threads:  threads,
			Args:     o.Args,
			Schedule: o.Schedule,
		})
		if err != nil {
			return 0, err
		}
		total += res.Seconds
	}
	return total / float64(o.Repetitions), nil
}

// Figure5 measures one numerical benchmark across the four OMP4Py
// modes and PyOMP (where supported) over the thread sweep.
func Figure5(name string, opts FigureOptions) (*Figure, error) {
	b, ok := Registry[name]
	if !ok || !b.Numerical {
		return nil, fmt.Errorf("bench: %q is not a Fig. 5 benchmark", name)
	}
	opts = opts.withDefaults()
	fig := &Figure{
		Title:  fmt.Sprintf("Fig. 5 (%s): execution time [s] vs threads", name),
		XLabel: "threads",
	}
	modes := append([]Mode{}, AllOMP4PyModes...)
	if _, unsupported := pyomp.Unsupported[name]; !unsupported {
		modes = append(modes, PyOMP)
	}
	for _, mode := range modes {
		s := Series{Label: mode.String()}
		for _, th := range opts.Threads {
			sec, err := measure(mode, name, th, opts)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: th, Seconds: sec})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Figure6 measures a non-numerical benchmark (graphic, wordcount)
// across the four OMP4Py modes; PyOMP cannot run these (§IV-B).
func Figure6(name string, opts FigureOptions) (*Figure, error) {
	if _, ok := Registry[name]; !ok {
		return nil, fmt.Errorf("bench: unknown benchmark %q", name)
	}
	opts = opts.withDefaults()
	fig := &Figure{
		Title:  fmt.Sprintf("Fig. 6 (%s): execution time [s] vs threads", name),
		XLabel: "threads",
	}
	for _, mode := range AllOMP4PyModes {
		s := Series{Label: mode.String()}
		for _, th := range opts.Threads {
			sec, err := measure(mode, name, th, opts)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: th, Seconds: sec})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Figure7 measures scheduling-policy speedups for graphic/wordcount:
// speedup of each (mode, policy) over the Pure 1-thread static
// baseline, with the paper's chunk size (300 by default).
func Figure7(name string, modes []Mode, chunk int64, opts FigureOptions) (*Figure, error) {
	if _, ok := Registry[name]; !ok {
		return nil, fmt.Errorf("bench: unknown benchmark %q", name)
	}
	opts = opts.withDefaults()
	if chunk <= 0 {
		chunk = 300
	}
	baseOpts := opts
	baseOpts.Schedule = rt.Schedule{Kind: directive.ScheduleStatic}
	baseline, err := measure(Pure, name, 1, baseOpts)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		Title: fmt.Sprintf(
			"Fig. 7 (%s): speedup vs Pure/1-thread/static, chunk %d", name, chunk),
		XLabel: "threads",
	}
	policies := []directive.ScheduleKind{
		directive.ScheduleStatic, directive.ScheduleDynamic, directive.ScheduleGuided,
	}
	for _, mode := range modes {
		for _, pol := range policies {
			runOpts := opts
			runOpts.Schedule = rt.Schedule{Kind: pol, Chunk: chunk}
			s := Series{Label: fmt.Sprintf("%s/%s", mode, pol)}
			for _, th := range opts.Threads {
				sec, err := measure(mode, name, th, runOpts)
				if err != nil {
					return nil, err
				}
				speedup := 0.0
				if sec > 0 {
					speedup = baseline / sec
				}
				s.Points = append(s.Points, Point{X: th, Seconds: speedup})
			}
			fig.Series = append(fig.Series, s)
		}
	}
	return fig, nil
}

// Figure8Options configure the hybrid MPI/OpenMP sweep.
type Figure8Options struct {
	Nodes          []int
	ThreadsPerNode int
	N, Iters       int
	Seed           int64
	Network        *mpi.NetworkModel
	Modes          []Mode
}

// DefaultNetwork models a commodity cluster interconnect: messages
// within a node are cheap; crossing nodes pays latency plus
// bandwidth.
func DefaultNetwork() *mpi.NetworkModel {
	return &mpi.NetworkModel{
		RanksPerNode:   1,
		IntraLatency:   200 * time.Nanosecond,
		InterLatency:   20 * time.Microsecond,
		InterBandwidth: 6e9, // ~6 GB/s effective
	}
}

// Figure8 measures the hybrid jacobi across node counts.
func Figure8(o Figure8Options) (*Figure, error) {
	if len(o.Nodes) == 0 {
		o.Nodes = []int{1, 2, 4, 8, 16}
	}
	if o.ThreadsPerNode == 0 {
		o.ThreadsPerNode = 16
	}
	if o.N == 0 {
		o.N = 192
	}
	if o.Iters == 0 {
		o.Iters = 5
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if len(o.Modes) == 0 {
		o.Modes = AllOMP4PyModes
	}
	if o.Network == nil {
		o.Network = DefaultNetwork()
	}
	fig := &Figure{
		Title: fmt.Sprintf(
			"Fig. 8: hybrid MPI/OpenMP jacobi, execution time [s] vs nodes (%d threads/node, n=%d)",
			o.ThreadsPerNode, o.N),
		XLabel: "nodes",
	}
	for _, mode := range o.Modes {
		s := Series{Label: mode.String()}
		for _, nodes := range o.Nodes {
			res, err := RunHybridJacobi(HybridConfig{
				Mode: mode, Nodes: nodes, ThreadsPerNode: o.ThreadsPerNode,
				N: o.N, Iters: o.Iters, Seed: o.Seed, Network: o.Network,
			})
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: nodes, Seconds: res.Seconds})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Speedups derives a speedup figure from a time figure, relative to
// each series' first point (or a fixed baseline series when baseline
// is non-empty).
func (f *Figure) Speedups(baseline string) *Figure {
	out := &Figure{Title: f.Title + " (speedup)", XLabel: f.XLabel}
	var base []Point
	if baseline != "" {
		for _, s := range f.Series {
			if s.Label == baseline {
				base = s.Points
			}
		}
	}
	for _, s := range f.Series {
		ref := base
		if ref == nil {
			ref = s.Points[:1]
		}
		ns := Series{Label: s.Label}
		for i, p := range s.Points {
			b := ref[0].Seconds
			if baseline != "" && i < len(ref) {
				b = ref[i].Seconds
			}
			sp := 0.0
			if p.Seconds > 0 {
				sp = b / p.Seconds
			}
			ns.Points = append(ns.Points, Point{X: p.X, Seconds: sp})
		}
		out.Series = append(out.Series, ns)
	}
	return out
}
