package bench

import (
	"strings"
	"testing"
	"time"

	"github.com/omp4go/omp4go/internal/mpi"
	"github.com/omp4go/omp4go/internal/pyomp"
)

func TestHybridJacobiMatchesSequential(t *testing.T) {
	const n, iters, seed = 48, 5, 42
	want := pyomp.SequentialJacobi(n, iters, seed)
	for _, nodes := range []int{1, 2, 4} {
		for _, mode := range []Mode{Hybrid, CompiledDT} {
			res, err := RunHybridJacobi(HybridConfig{
				Mode: mode, Nodes: nodes, ThreadsPerNode: 2,
				N: n, Iters: iters, Seed: seed,
			})
			if err != nil {
				t.Fatalf("%v/%d nodes: %v", mode, nodes, err)
			}
			if !checksumOK(res.Checksum, want, 1e-9) {
				t.Fatalf("%v/%d nodes: checksum %v, want %v", mode, nodes, res.Checksum, want)
			}
		}
	}
}

func TestHybridJacobiUnevenRows(t *testing.T) {
	// n not divisible by nodes exercises the block partition edges.
	const n, iters, seed = 50, 4, 7
	want := pyomp.SequentialJacobi(n, iters, seed)
	res, err := RunHybridJacobi(HybridConfig{
		Mode: Hybrid, Nodes: 3, ThreadsPerNode: 2, N: n, Iters: iters, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !checksumOK(res.Checksum, want, 1e-9) {
		t.Fatalf("checksum %v, want %v", res.Checksum, want)
	}
}

func TestHybridJacobiNetworkModelSlowsRuns(t *testing.T) {
	cfg := HybridConfig{
		Mode: CompiledDT, Nodes: 4, ThreadsPerNode: 1, N: 32, Iters: 4, Seed: 1,
	}
	fast, err := RunHybridJacobi(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Network = &mpi.NetworkModel{
		RanksPerNode: 1,
		InterLatency: 10 * time.Millisecond,
	}
	slow, err := RunHybridJacobi(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Seconds <= fast.Seconds {
		t.Fatalf("network model had no effect: %v vs %v", slow.Seconds, fast.Seconds)
	}
	if slow.Checksum != fast.Checksum {
		t.Fatalf("network model changed the result")
	}
}

func TestHybridConfigValidation(t *testing.T) {
	if _, err := RunHybridJacobi(HybridConfig{Nodes: 0, ThreadsPerNode: 1}); err == nil {
		t.Fatal("nodes=0 accepted")
	}
	if _, err := RunHybridJacobi(HybridConfig{Nodes: 1, ThreadsPerNode: 0}); err == nil {
		t.Fatal("threads=0 accepted")
	}
}

func TestAnalyzeStaticTableI(t *testing.T) {
	// The generated census must reproduce Table I's rows.
	expect := map[string][]string{
		"fft":    {"parallel for"},
		"jacobi": {"parallel", "for", "for reduction(+)", "single", "barrier"},
		"lu":     {"parallel", "single", "for"},
		"md":     {"parallel for", "parallel reduction(+)", "for"},
		"pi":     {"parallel for reduction(+)"},
		"qsort":  {"task with if clause", "taskwait", "parallel", "single"},
		"bfs":    {"critical", "atomic", "task", "parallel", "single"},
	}
	for name, wants := range expect {
		sf, err := AnalyzeStatic(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, w := range wants {
			found := false
			for _, d := range sf.Directives {
				if d == w {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: missing feature %q in %v", name, w, sf.Directives)
			}
		}
	}
	// Synchronization column: jacobi is the explicit-barrier row.
	for name, want := range map[string]string{
		"jacobi": "Explicit barrier",
		"pi":     "Implicit barriers",
		"fft":    "Implicit barriers",
		"qsort":  "Implicit barriers",
	} {
		sf, err := AnalyzeStatic(name)
		if err != nil {
			t.Fatal(err)
		}
		if sf.Synchronization != want {
			t.Errorf("%s synchronization = %q, want %q", name, sf.Synchronization, want)
		}
	}
}

func TestTableIRenders(t *testing.T) {
	out, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fft", "jacobi", "lu", "md", "pi", "qsort", "bfs"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table I missing %s:\n%s", name, out)
		}
	}
	if strings.Contains(out, "wordcount") || strings.Contains(out, "graphic") {
		t.Error("Table I should cover only the numerical benchmarks")
	}
}

func TestAnalyzeStaticUnknown(t *testing.T) {
	if _, err := AnalyzeStatic("nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
