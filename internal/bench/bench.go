package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"github.com/omp4go/omp4go/internal/compile"
	"github.com/omp4go/omp4go/internal/graph"
	"github.com/omp4go/omp4go/internal/interp"
	"github.com/omp4go/omp4go/internal/minipy"
	"github.com/omp4go/omp4go/internal/ompt"
	"github.com/omp4go/omp4go/internal/pyomp"
	"github.com/omp4go/omp4go/internal/rt"
	"github.com/omp4go/omp4go/internal/textgen"
	"github.com/omp4go/omp4go/internal/transform"
)

// Mode is an execution mode of the evaluation: the four OMP4Py modes
// plus the PyOMP baseline (§IV).
type Mode int

// Execution modes, numbered like the artifact's CLI (PyOMP is -1
// there; here it follows the OMP4Py modes).
const (
	Pure Mode = iota
	Hybrid
	Compiled
	CompiledDT
	PyOMP
)

// AllOMP4PyModes lists the four OMP4Py modes in artifact order.
var AllOMP4PyModes = []Mode{Pure, Hybrid, Compiled, CompiledDT}

// String returns the paper's mode name.
func (m Mode) String() string {
	switch m {
	case Pure:
		return "Pure"
	case Hybrid:
		return "Hybrid"
	case Compiled:
		return "Compiled"
	case CompiledDT:
		return "CompiledDT"
	case PyOMP:
		return "PyOMP"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode converts the artifact's numeric mode (-1 for PyOMP, 0-3
// for OMP4Py) into a Mode.
func ParseMode(n int) (Mode, error) {
	switch n {
	case -1:
		return PyOMP, nil
	case 0:
		return Pure, nil
	case 1:
		return Hybrid, nil
	case 2:
		return Compiled, nil
	case 3:
		return CompiledDT, nil
	}
	return Pure, fmt.Errorf("bench: invalid mode %d (want -1..3)", n)
}

// Benchmark describes one evaluation program.
type Benchmark struct {
	Name string
	// Source is the MiniPy program (OMP4Py modes).
	Source string
	// ArgNames documents the size arguments after threads.
	ArgNames []string
	// DefaultArgs are laptop-scale sizes; PaperArgs are the sizes of
	// §IV (hours of sequential compute at interpreter speed).
	DefaultArgs []int64
	PaperArgs   []int64
	// Reference computes the sequential native checksum.
	Reference func(args []int64) float64
	// Tolerance is the relative checksum tolerance (reduction order
	// differs across schedules).
	Tolerance float64
	// Numerical marks the seven Fig. 5 benchmarks.
	Numerical bool
}

// Registry holds every benchmark by name; Names gives evaluation
// order (the artifact's test names).
var Registry = map[string]*Benchmark{}

// Names lists benchmarks in the paper's order: the seven numerical
// programs of Fig. 5 and the two non-numerical ones of Fig. 6.
// wavefront (task dependences) follows as a post-paper addition.
var Names = []string{"fft", "jacobi", "lu", "md", "pi", "qsort", "bfs", "graphic", "wordcount", "wavefront"}

func register(b *Benchmark) { Registry[b.Name] = b }

func init() {
	register(&Benchmark{
		Name: "fft", Source: fftSource,
		ArgNames:    []string{"n", "seed"},
		DefaultArgs: []int64{1 << 12, 42},
		PaperArgs:   []int64{1 << 24, 42}, // 16M complex values
		Reference: func(a []int64) float64 {
			return pyomp.SequentialFFT(int(a[0]), a[1])
		},
		Tolerance: 1e-9,
		Numerical: true,
	})
	register(&Benchmark{
		Name: "jacobi", Source: jacobiSource,
		ArgNames:    []string{"n", "iters", "seed"},
		DefaultArgs: []int64{192, 10, 42},
		PaperArgs:   []int64{3000, 1000, 42}, // 3k x 3k, up to 1000 iterations
		Reference: func(a []int64) float64 {
			return pyomp.SequentialJacobi(int(a[0]), int(a[1]), a[2])
		},
		Tolerance: 1e-9,
		Numerical: true,
	})
	register(&Benchmark{
		Name: "lu", Source: luSource,
		ArgNames:    []string{"n", "seed"},
		DefaultArgs: []int64{128, 42},
		PaperArgs:   []int64{2000, 42}, // 2k x 2k
		Reference: func(a []int64) float64 {
			return pyomp.SequentialLU(int(a[0]), a[1])
		},
		Tolerance: 1e-9,
		Numerical: true,
	})
	register(&Benchmark{
		Name: "md", Source: mdSource,
		ArgNames:    []string{"particles", "steps", "seed"},
		DefaultArgs: []int64{128, 4, 42},
		PaperArgs:   []int64{8000, 10, 42}, // 8000 particles
		Reference: func(a []int64) float64 {
			return pyomp.SequentialMD(int(a[0]), int(a[1]), a[2])
		},
		Tolerance: 1e-9,
		Numerical: true,
	})
	register(&Benchmark{
		Name: "pi", Source: piSource,
		ArgNames:    []string{"intervals"},
		DefaultArgs: []int64{2_000_000},
		PaperArgs:   []int64{20_000_000_000}, // 20 billion intervals
		Reference: func(a []int64) float64 {
			return pyomp.SequentialPi(a[0])
		},
		Tolerance: 1e-9,
		Numerical: true,
	})
	register(&Benchmark{
		Name: "qsort", Source: qsortSource,
		ArgNames:    []string{"n", "seed"},
		DefaultArgs: []int64{200_000, 42},
		PaperArgs:   []int64{400_000_000, 42}, // 400M floats
		Reference: func(a []int64) float64 {
			return pyomp.SequentialQsortChecksum(int(a[0]), a[1])
		},
		Tolerance: 1e-9,
		Numerical: true,
	})
	register(&Benchmark{
		Name: "bfs", Source: bfsSource,
		ArgNames:    []string{"side", "seed"},
		DefaultArgs: []int64{61, 42},
		PaperArgs:   []int64{2100, 42}, // 2.1k x 2.1k grid
		Reference: func(a []int64) float64 {
			return pyomp.SequentialBFSChecksum(int(a[0]), a[1])
		},
		Tolerance: 0,
		Numerical: true,
	})
	register(&Benchmark{
		Name: "graphic", Source: graphicSource,
		ArgNames:    []string{"nodes", "degree", "seed"},
		DefaultArgs: []int64{2000, 16, 42},
		PaperArgs:   []int64{300_000, 100, 42}, // 300k nodes, 100 edges per node
		Reference: func(a []int64) float64 {
			g := graph.Random(int(a[0]), int(a[1]), a[2])
			total := 0.0
			for u := 0; u < g.N(); u++ {
				total += g.Clustering(u)
			}
			return total
		},
		Tolerance: 1e-9,
	})
	register(&Benchmark{
		Name: "wavefront", Source: wavefrontSource,
		ArgNames:    []string{"n", "seed"},
		DefaultArgs: []int64{24, 42},
		PaperArgs:   []int64{96, 42}, // 9216 cell tasks
		Reference: func(a []int64) float64 {
			return sequentialWavefront(int(a[0]), a[1])
		},
		// The dependence graph fixes every operand, so the result is
		// bit-identical to the sequential sweep under any scheduler.
		Tolerance: 0,
	})
	register(&Benchmark{
		Name: "wordcount", Source: wordcountSource,
		ArgNames:    []string{"lines", "seed"},
		DefaultArgs: []int64{3000, 42},
		PaperArgs:   []int64{40_000_000, 42}, // the 21 GB dump, as lines
		Reference: func(a []int64) float64 {
			c := textgen.Generate(textgen.Options{Lines: int(a[0]), Seed: a[1]})
			counts := textgen.SequentialWordCount(c)
			total := 0
			for _, n := range counts {
				total += n
			}
			return float64(len(counts))*1e6 + float64(total)
		},
		Tolerance: 0,
	})
}

// sequentialWavefront is the native reference for the wavefront
// kernel: the same recurrence in row-major order.
func sequentialWavefront(n int, seed int64) float64 {
	a := make([]float64, n*n)
	bias := float64(seed%7) * 0.001
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			up, left := 1.0, 1.0
			if i > 0 {
				up = a[(i-1)*n+j]
			}
			if j > 0 {
				left = a[i*n+j-1]
			}
			a[i*n+j] = math.Sqrt(up*1.25+left/3.0) + up/7.0 + bias
		}
	}
	s := 0.0
	for _, v := range a {
		s += v
	}
	return s
}

// RunConfig configures one measurement.
type RunConfig struct {
	Threads int
	// Args override the benchmark's DefaultArgs when non-nil.
	Args []int64
	// Schedule sets the run-sched ICV consumed by schedule(runtime)
	// loops (the Fig. 7 policy sweep). Zero value = static.
	Schedule rt.Schedule
	// GIL enables the GIL-enabled-interpreter ablation (Pure/Hybrid
	// only; compiled code ignores the GIL like Cython nogil regions).
	GIL bool
	// ContendedAllocOff disables the free-threading contention model
	// for interpreted modes (the forward-looking ablation).
	ContendedAllocOff bool
	// Stdout captures program prints (nil discards them).
	Stdout io.Writer
	// Tool attaches an observability tool to the program's runtime
	// before the kernel runs (OMP4Py modes only; PyOMP is native Go
	// and has no instrumented runtime).
	Tool ompt.Tool
	// CollectMetrics attaches an internal tracer (when Tool is nil)
	// and fills Result.Metrics with aggregate wait-time and
	// load-imbalance statistics.
	CollectMetrics bool
	// KernelsOff pins CompiledDT worksharing loops to the interp
	// bridge (the OMP4GO_COMPILE_KERNELS=off escape hatch), the
	// baseline of the kernel differential matrix and A/B report.
	KernelsOff bool
	// Getenv overrides the ICV environment seen by the program's
	// runtime (nil = empty environment). The kernel matrix uses it
	// to sweep OMP4GO_TASK_SCHED across both task schedulers.
	Getenv func(string) string
}

// Result is one measurement.
type Result struct {
	Checksum float64
	Seconds  float64
	Mode     Mode
	Name     string
	Threads  int
	// Metrics holds trace aggregates (barrier wait, load imbalance,
	// task counts) when CollectMetrics was set.
	Metrics *ompt.Stats
}

// Run executes one benchmark in one mode and times the kernel
// (inputs are generated inside the timed entry, as the artifact's
// main.py does).
func Run(mode Mode, name string, cfg RunConfig) (Result, error) {
	b, ok := Registry[name]
	if !ok {
		return Result{}, fmt.Errorf("bench: unknown benchmark %q (valid: %v)", name, Names)
	}
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	args := cfg.Args
	if args == nil {
		args = b.DefaultArgs
	}
	if len(args) != len(b.DefaultArgs) {
		return Result{}, fmt.Errorf("bench: %s expects %d size args %v, got %d",
			name, len(b.DefaultArgs), b.ArgNames, len(args))
	}
	res := Result{Mode: mode, Name: name, Threads: cfg.Threads}

	if mode == PyOMP && (cfg.Tool != nil || cfg.CollectMetrics) {
		return Result{}, fmt.Errorf("bench: tracing is not supported for the native PyOMP baseline")
	}
	if mode == PyOMP {
		start := time.Now()
		sum, err := pyomp.Run(name, cfg.Threads, args)
		if err != nil {
			return Result{}, err
		}
		res.Seconds = time.Since(start).Seconds()
		res.Checksum = sum
		return res, nil
	}

	mod, err := minipy.Parse(b.Source, name+".py")
	if err != nil {
		return Result{}, fmt.Errorf("bench: parse %s: %w", name, err)
	}
	if _, err := transform.Module(mod); err != nil {
		return Result{}, fmt.Errorf("bench: transform %s: %w", name, err)
	}

	layer := rt.LayerAtomic
	if mode == Pure {
		layer = rt.LayerMutex
	}
	interpMode := mode == Pure || mode == Hybrid
	opts := interp.Options{
		Layer:          layer,
		GIL:            cfg.GIL && interpMode,
		ContendedAlloc: interpMode && !cfg.ContendedAllocOff,
		Stdout:         cfg.Stdout,
		Getenv:         cfg.Getenv,
	}
	if opts.Getenv == nil {
		opts.Getenv = func(string) string { return "" }
	}
	if opts.Stdout == nil {
		opts.Stdout = io.Discard
	}
	in := interp.New(opts)
	installInputModules(in)
	tool := cfg.Tool
	var tracer *ompt.Tracer
	if cfg.CollectMetrics && tool == nil {
		tracer = ompt.NewTracer(0)
		tool = tracer
	}
	if tool != nil {
		in.Runtime().SetTool(tool)
	}
	if mode == Compiled || mode == CompiledDT {
		copts := compile.Options{Typed: mode == CompiledDT}
		if cfg.KernelsOff {
			copts.Kernels = compile.KernelsOff
		}
		if err := compile.Install(in, mod, copts); err != nil {
			return Result{}, fmt.Errorf("bench: compile %s: %w", name, err)
		}
	}
	if cfg.Schedule.Kind != 0 || cfg.Schedule.Chunk != 0 {
		if err := in.Runtime().SetSchedule(cfg.Schedule); err != nil {
			return Result{}, err
		}
	}
	if err := in.RunModule(mod); err != nil {
		return Result{}, fmt.Errorf("bench: load %s: %w", name, err)
	}

	callArgs := make([]interp.Value, 0, 1+len(args))
	callArgs = append(callArgs, int64(cfg.Threads))
	for _, a := range args {
		callArgs = append(callArgs, a)
	}
	start := time.Now()
	v, err := in.CallFunction("bench_main", callArgs...)
	if err != nil {
		return Result{}, fmt.Errorf("bench: run %s (%s): %w", name, mode, err)
	}
	res.Seconds = time.Since(start).Seconds()
	sum, ok2 := interp.AsFloat(v)
	if !ok2 {
		return Result{}, fmt.Errorf("bench: %s returned %s, want a number", name, interp.TypeName(v))
	}
	res.Checksum = sum
	if cfg.CollectMetrics {
		if tracer == nil {
			tracer, _ = tool.(*ompt.Tracer)
		}
		if tracer != nil {
			res.Metrics = tracer.Stats()
		}
	}
	return res, nil
}

// Validate runs the benchmark and compares its checksum against the
// sequential native reference.
func Validate(mode Mode, name string, cfg RunConfig) (Result, error) {
	res, err := Run(mode, name, cfg)
	if err != nil {
		return res, err
	}
	b := Registry[name]
	args := cfg.Args
	if args == nil {
		args = b.DefaultArgs
	}
	want := b.Reference(args)
	if !checksumOK(res.Checksum, want, b.Tolerance) {
		return res, fmt.Errorf("bench: %s (%s, %d threads): checksum %v, reference %v",
			name, mode, cfg.Threads, res.Checksum, want)
	}
	return res, nil
}

func checksumOK(got, want, tol float64) bool {
	if got == want {
		return true
	}
	if tol == 0 {
		return false
	}
	return math.Abs(got-want) <= tol*(1+math.Abs(want))
}
