package bench

// The MiniPy benchmark programs of the evaluation (§IV). Each module
// defines bench_main(threads, sizes...) -> float checksum; the
// OpenMP usage of the numerical seven reproduces the static
// characteristics of Table I. Type annotations drive the CompiledDT
// mode and are ignored elsewhere, as in the paper.

// piSource: parallel for reduction(+), implicit barriers (Table I).
const piSource = `
from omp4py import *

@omp
def bench_main(threads: int, n: int) -> float:
    omp_set_num_threads(threads)
    w: float = 1.0 / n
    pi_value: float = 0.0
    with omp("parallel for reduction(+:pi_value)"):
        for i in range(n):
            local: float = (i + 0.5) * w
            pi_value += 4.0 / (1.0 + local * local)
    return pi_value * w
`

// fftSource: parallel, for; implicit barriers (Table I). Iterative
// radix-2 Cooley-Tukey, identical arithmetic to the Go reference.
const fftSource = `
from omp4py import *
import bench
import math

@omp
def bench_main(threads: int, n: int, seed: int) -> float:
    omp_set_num_threads(threads)
    data = bench.fft_input(n, seed)
    re = data[0]
    im = data[1]
    j: int = 0
    for i in range(1, n):
        bit: int = n // 2
        while j & bit != 0:
            j = j & ~bit
            bit = bit // 2
        j = j | bit
        if i < j:
            tr: float = re[i]
            re[i] = re[j]
            re[j] = tr
            ti: float = im[i]
            im[i] = im[j]
            im[j] = ti
    length: int = 2
    while length <= n:
        ang: float = -2.0 * math.pi / length
        w_re: float = math.cos(ang)
        w_im: float = math.sin(ang)
        groups: int = n // length
        half: int = length // 2
        with omp("parallel for"):
            for g in range(groups):
                base: int = g * length
                cur_re: float = 1.0
                cur_im: float = 0.0
                for k in range(half):
                    a_re: float = re[base + k]
                    a_im: float = im[base + k]
                    b_re: float = re[base + k + half] * cur_re - im[base + k + half] * cur_im
                    b_im: float = re[base + k + half] * cur_im + im[base + k + half] * cur_re
                    re[base + k] = a_re + b_re
                    im[base + k] = a_im + b_im
                    re[base + k + half] = a_re - b_re
                    im[base + k + half] = a_im - b_im
                    t_re: float = cur_re * w_re - cur_im * w_im
                    cur_im = cur_re * w_im + cur_im * w_re
                    cur_re = t_re
        length = length * 2
    s: float = 0.0
    step: int = n // 64
    if step == 0:
        step = 1
    idx: int = 0
    while idx < n:
        s += math.fabs(re[idx]) + math.fabs(im[idx])
        idx += step
    return s
`

// jacobiSource: parallel, for reduction(+), single, explicit barrier
// (Table I).
const jacobiSource = `
from omp4py import *
import bench
import math

@omp
def bench_main(threads: int, n: int, iters: int, seed: int) -> float:
    omp_set_num_threads(threads)
    data = bench.jacobi_input(n, seed)
    a = data[0]
    b = data[1]
    x = [0.0] * n
    xn = [0.0] * n
    error: float = 0.0
    with omp("parallel"):
        it: int = 0
        while it < iters:
            with omp("for nowait"):
                for i in range(n):
                    s: float = 0.0
                    row: int = i * n
                    for jj in range(n):
                        if jj != i:
                            s += a[row + jj] * x[jj]
                    xn[i] = (b[i] - s) / a[row + i]
            omp("barrier")
            with omp("for reduction(+:error)"):
                for i2 in range(n):
                    error += math.fabs(xn[i2] - x[i2])
            with omp("single"):
                for i3 in range(n):
                    x[i3] = xn[i3]
            it += 1
    total: float = 0.0
    for i4 in range(n):
        total += x[i4]
    return total
`

// luSource: parallel, multiple for loops, single (Table I).
const luSource = `
from omp4py import *
import bench
import math

@omp
def bench_main(threads: int, n: int, seed: int) -> float:
    omp_set_num_threads(threads)
    a = bench.lu_input(n, seed)
    pivot = [0.0]
    with omp("parallel"):
        k: int = 0
        while k < n:
            with omp("single"):
                pivot[0] = a[k * n + k]
            with omp("for"):
                for i in range(k + 1, n):
                    factor: float = a[i * n + k] / pivot[0]
                    a[i * n + k] = factor
                    for j in range(k + 1, n):
                        a[i * n + j] = a[i * n + j] - factor * a[k * n + j]
            k += 1
    s: float = 0.0
    for k2 in range(n):
        s += math.log(math.fabs(a[k2 * n + k2]))
    return s
`

// mdSource: parallel reduction(+) with inner for, parallel for
// (Table I). Velocity Verlet with a soft central pair potential.
const mdSource = `
from omp4py import *
import bench
import math

@omp
def compute_forces(pos, acc, n: int):
    with omp("parallel for"):
        for i in range(n):
            fx: float = 0.0
            fy: float = 0.0
            xi: float = pos[2 * i]
            yi: float = pos[2 * i + 1]
            for j in range(n):
                if j != i:
                    dx: float = xi - pos[2 * j]
                    dy: float = yi - pos[2 * j + 1]
                    r2: float = dx * dx + dy * dy + 0.000001
                    inv: float = 1.0 / (r2 * math.sqrt(r2))
                    fx += dx * inv * 0.000001
                    fy += dy * inv * 0.000001
            acc[2 * i] = fx
            acc[2 * i + 1] = fy
    return None

@omp
def bench_main(threads: int, n: int, steps: int, seed: int) -> float:
    omp_set_num_threads(threads)
    data = bench.md_input(n, seed)
    pos = data[0]
    vel = data[1]
    acc = [0.0] * (2 * n)
    dt: float = 0.001
    compute_forces(pos, acc, n)
    for s in range(steps):
        with omp("parallel for"):
            for i in range(n):
                vel[2 * i] += 0.5 * dt * acc[2 * i]
                vel[2 * i + 1] += 0.5 * dt * acc[2 * i + 1]
                pos[2 * i] += dt * vel[2 * i]
                pos[2 * i + 1] += dt * vel[2 * i + 1]
        compute_forces(pos, acc, n)
        with omp("parallel for"):
            for i2 in range(n):
                vel[2 * i2] += 0.5 * dt * acc[2 * i2]
                vel[2 * i2 + 1] += 0.5 * dt * acc[2 * i2 + 1]
    pe: float = 0.0
    with omp("parallel reduction(+:pe)"):
        local_pe: float = 0.0
        with omp("for nowait"):
            for i3 in range(n):
                local_pe += pos[2 * i3] * pos[2 * i3] + pos[2 * i3 + 1] * pos[2 * i3 + 1]
        pe += local_pe
    total: float = 0.0
    for i4 in range(2 * n):
        total += pos[i4]
    return total
`

// qsortSource: parallel, single, task with if clause (Table I).
const qsortSource = `
from omp4py import *
import bench

@omp
def qsort_task(a, lo: int, hi: int):
    if lo >= hi:
        return None
    pivot: float = a[(lo + hi) // 2]
    i: int = lo
    j: int = hi
    while i <= j:
        while a[i] < pivot:
            i += 1
        while a[j] > pivot:
            j -= 1
        if i <= j:
            t: float = a[i]
            a[i] = a[j]
            a[j] = t
            i += 1
            j -= 1
    with omp("task if(j - lo > 512)"):
        qsort_task(a, lo, j)
    with omp("task if(hi - i > 512)"):
        qsort_task(a, i, hi)
    omp("taskwait")
    return None

@omp
def bench_main(threads: int, n: int, seed: int) -> float:
    omp_set_num_threads(threads)
    a = bench.qsort_input(n, seed)
    with omp("parallel"):
        with omp("single"):
            qsort_task(a, 0, n - 1)
    s: float = 0.0
    step: int = n // 97
    if step == 0:
        step = 1
    idx: int = 0
    while idx < n:
        s += a[idx] * (idx % 13 + 1)
        idx += step
    return s
`

// bfsSource: parallel, single, task (Table I). Each feasible move
// spawns a task (§IV-A); cells are claimed under a critical section.
const bfsSource = `
from omp4py import *
import bench

@omp
def visit(grid, visited, n: int, idx: int, counter):
    claimed = [0]
    with omp("critical(claim)"):
        if visited[idx] == 0:
            visited[idx] = 1
            claimed[0] = 1
    if claimed[0] == 0:
        return None
    with omp("atomic"):
        counter[0] += 1
    r: int = idx // n
    c: int = idx % n
    if r > 0 and grid[idx - n] == 0:
        with omp("task"):
            visit(grid, visited, n, idx - n, counter)
    if r < n - 1 and grid[idx + n] == 0:
        with omp("task"):
            visit(grid, visited, n, idx + n, counter)
    if c > 0 and grid[idx - 1] == 0:
        with omp("task"):
            visit(grid, visited, n, idx - 1, counter)
    if c < n - 1 and grid[idx + 1] == 0:
        with omp("task"):
            visit(grid, visited, n, idx + 1, counter)
    return None

@omp
def bench_main(threads: int, n: int, seed: int) -> float:
    omp_set_num_threads(threads)
    grid = bench.maze_input(n, seed)
    visited = [0] * (n * n)
    counter = [0]
    with omp("parallel"):
        with omp("single"):
            visit(grid, visited, n, 0, counter)
    return counter[0] * 1.0
`

// graphicSource: the clustering coefficient application of §IV-B; the
// heavy lifting happens inside the graph library (NetworkX in the
// paper), so compiled modes gain little. schedule(runtime) lets the
// harness sweep scheduling policies for Fig. 7.
const graphicSource = `
from omp4py import *
import graphlib

@omp
def bench_main(threads: int, n: int, d: int, seed: int) -> float:
    omp_set_num_threads(threads)
    g = graphlib.random_graph(n, d, seed)
    total = 0.0
    with omp("parallel for reduction(+:total) schedule(runtime)"):
        for u in range(n):
            total += graphlib.clustering(g, u)
    return total
`

// wordcountSource: the wordcount application of §IV-B — string and
// dict work the compiled modes cannot specialize. Per-thread local
// dicts merge under a critical section; schedule(runtime) again
// drives the Fig. 7 policy sweep.
const wordcountSource = `
from omp4py import *
import bench

@omp
def bench_main(threads: int, lines: int, seed: int) -> float:
    omp_set_num_threads(threads)
    text = bench.corpus(lines, seed)
    counts = {}
    nlines: int = len(text)
    with omp("parallel"):
        local = {}
        with omp("for schedule(runtime) nowait"):
            for li in range(nlines):
                for w in text[li].lower().split():
                    local[w] = local.get(w, 0) + 1
        with omp("critical"):
            for k in local:
                counts[k] = counts.get(k, 0) + local[k]
    total = 0
    for k2 in counts:
        total += counts[k2]
    return len(counts) * 1000000.0 + total
`

// wavefrontSource: task dataflow (task depend, taskwait) — every cell
// of an n x n grid is one task reading its upper and left neighbours
// and writing itself, so the dependence tracker alone sequences the
// sweep. The recurrence fixes each cell's operands, which makes the
// checksum bit-identical under any conforming schedule (Tolerance 0).
const wavefrontSource = `
from omp4py import *
import math

@omp
def bench_main(threads: int, n: int, seed: int) -> float:
    omp_set_num_threads(threads)
    a = [0.0] * (n * n)
    bias: float = (seed % 7) * 0.001
    with omp("parallel"):
        with omp("single"):
            i: int = 0
            while i < n:
                j: int = 0
                while j < n:
                    with omp("task depend(in: a[i-1][j], a[i][j-1]) depend(out: a[i][j]) firstprivate(i, j)"):
                        up: float = 1.0
                        left: float = 1.0
                        if i > 0:
                            up = a[(i - 1) * n + j]
                        if j > 0:
                            left = a[i * n + j - 1]
                        a[i * n + j] = math.sqrt(up * 1.25 + left / 3.0) + up / 7.0 + bias
                    j += 1
                i += 1
            omp("taskwait")
    s: float = 0.0
    for k in range(n * n):
        s += a[k]
    return s
`
