package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/omp4go/omp4go/internal/compile"
	"github.com/omp4go/omp4go/internal/interp"
	"github.com/omp4go/omp4go/internal/minipy"
	"github.com/omp4go/omp4go/internal/mpi"
	"github.com/omp4go/omp4go/internal/rt"
	"github.com/omp4go/omp4go/internal/transform"
)

// hybridJacobiSource is the MPI+OpenMP jacobi of §IV-C: MPI
// distributes matrix rows across processes, each sweep updates the
// local rows with OpenMP, MPI_Allgather rebuilds x, and
// MPI_Allreduce combines the error for the stopping criterion.
const hybridJacobiSource = `
from omp4py import *
import bench
import math
import mpi4py

@omp
def bench_main(threads: int, n: int, iters: int, seed: int) -> float:
    omp_set_num_threads(threads)
    rank: int = mpi4py.rank()
    procs: int = mpi4py.size()
    data = bench.jacobi_input(n, seed)
    a = data[0]
    b = data[1]
    lo: int = rank * n // procs
    hi: int = (rank + 1) * n // procs
    x = [0.0] * n
    local = [0.0] * (hi - lo)
    it: int = 0
    while it < iters:
        with omp("parallel for"):
            for i in range(lo, hi):
                s: float = 0.0
                row: int = i * n
                for jj in range(n):
                    if jj != i:
                        s += a[row + jj] * x[jj]
                local[i - lo] = (b[i] - s) / a[row + i]
        err: float = 0.0
        with omp("parallel for reduction(+:err)"):
            for i2 in range(lo, hi):
                err += math.fabs(local[i2 - lo] - x[i2])
        globalerr: float = mpi4py.allreduce(err)
        x = mpi4py.allgather(local)
        if globalerr < 0.0000000001:
            it = iters
        it += 1
    total: float = 0.0
    for i3 in range(n):
        total += x[i3]
    return total
`

// HybridConfig configures a Fig. 8 run.
type HybridConfig struct {
	// Mode is the OMP4Py mode each rank executes in.
	Mode Mode
	// Nodes is the simulated node count; one MPI rank runs per node,
	// as in the paper's 16-threads-per-node setup.
	Nodes int
	// ThreadsPerNode is the OpenMP team size within each rank.
	ThreadsPerNode int
	// N, Iters, Seed are the jacobi problem parameters.
	N     int
	Iters int
	Seed  int64
	// Network is the simulated interconnect (nil = ideal).
	Network *mpi.NetworkModel
}

// HybridResult is one hybrid measurement.
type HybridResult struct {
	Checksum float64
	Seconds  float64
	Nodes    int
}

// RunHybridJacobi executes the hybrid MPI/OpenMP jacobi: every rank
// hosts its own interpreter instance (one Python process per rank,
// as mpirun would launch) bound to the shared in-process MPI fabric.
func RunHybridJacobi(cfg HybridConfig) (HybridResult, error) {
	if cfg.Nodes < 1 || cfg.ThreadsPerNode < 1 {
		return HybridResult{}, fmt.Errorf("bench: invalid hybrid config %+v", cfg)
	}
	checksums := make([]float64, cfg.Nodes)
	var mu sync.Mutex
	start := time.Now()
	err := mpi.Run(cfg.Nodes, cfg.Network, func(c *mpi.Comm) error {
		sum, err := runHybridRank(cfg, c)
		if err != nil {
			return fmt.Errorf("rank %d: %w", c.Rank(), err)
		}
		mu.Lock()
		checksums[c.Rank()] = sum
		mu.Unlock()
		return nil
	})
	if err != nil {
		return HybridResult{}, err
	}
	res := HybridResult{Checksum: checksums[0], Seconds: time.Since(start).Seconds(), Nodes: cfg.Nodes}
	for r, s := range checksums {
		if s != checksums[0] {
			return res, fmt.Errorf("bench: rank %d checksum %v differs from rank 0's %v", r, s, checksums[0])
		}
	}
	return res, nil
}

// runHybridRank builds one rank's interpreter with the mpi4py
// bridge and runs the program.
func runHybridRank(cfg HybridConfig, c *mpi.Comm) (float64, error) {
	mod, err := minipy.Parse(hybridJacobiSource, "hybrid_jacobi.py")
	if err != nil {
		return 0, err
	}
	if _, err := transform.Module(mod); err != nil {
		return 0, err
	}
	layer := rt.LayerAtomic
	if cfg.Mode == Pure {
		layer = rt.LayerMutex
	}
	interpMode := cfg.Mode == Pure || cfg.Mode == Hybrid
	in := interp.New(interp.Options{
		Layer:          layer,
		ContendedAlloc: interpMode,
		Stdout:         io.Discard,
		Getenv:         func(string) string { return "" },
	})
	installInputModules(in)
	// Land this rank's omp4go_mpi_* counters on the same registry the
	// rank's /metrics endpoint (if enabled) serves.
	c.AttachMetrics(in.Runtime().Metrics())
	in.RegisterModule(mpiModule(c))
	if cfg.Mode == Compiled || cfg.Mode == CompiledDT {
		if err := compile.Install(in, mod, compile.Options{Typed: cfg.Mode == CompiledDT}); err != nil {
			return 0, err
		}
	}
	if err := in.RunModule(mod); err != nil {
		return 0, err
	}
	v, err := in.CallFunction("bench_main",
		int64(cfg.ThreadsPerNode), int64(cfg.N), int64(cfg.Iters), cfg.Seed)
	if err != nil {
		return 0, err
	}
	sum, ok := interp.AsFloat(v)
	if !ok {
		return 0, fmt.Errorf("bench_main returned %s", interp.TypeName(v))
	}
	return sum, nil
}

// mpiModule exposes the rank's communicator to MiniPy, mirroring the
// mpi4py surface the benchmark uses. Like mpi4py backed by a C MPI
// library, the data moves through native code; the calls block, so
// they are marked GIL-releasing.
func mpiModule(c *mpi.Comm) *interp.Module {
	pos := minipy.Position{}
	m := &interp.Module{Name: "mpi4py", Attrs: map[string]interp.Value{}}
	reg := func(name string, releases bool, fn func(th *interp.Thread, args []interp.Value) (interp.Value, error)) {
		m.Attrs[name] = &interp.Builtin{Name: name, Fn: fn, ReleasesGIL: releases}
	}
	reg("rank", false, func(th *interp.Thread, args []interp.Value) (interp.Value, error) {
		return int64(c.Rank()), nil
	})
	reg("size", false, func(th *interp.Thread, args []interp.Value) (interp.Value, error) {
		return int64(c.Size()), nil
	})
	reg("barrier", true, func(th *interp.Thread, args []interp.Value) (interp.Value, error) {
		if err := c.Barrier(); err != nil {
			return nil, interp.NewPyError("RuntimeError", err.Error(), pos)
		}
		return nil, nil
	})
	reg("allreduce", true, func(th *interp.Thread, args []interp.Value) (interp.Value, error) {
		if len(args) != 1 {
			return nil, interp.NewPyError("TypeError", "allreduce(value)", pos)
		}
		f, ok := interp.AsFloat(args[0])
		if !ok {
			return nil, interp.NewPyError("TypeError", "allreduce value must be a number", pos)
		}
		res, err := c.Allreduce(f, mpi.OpSum)
		if err != nil {
			return nil, interp.NewPyError("RuntimeError", err.Error(), pos)
		}
		return res, nil
	})
	reg("allgather", true, func(th *interp.Thread, args []interp.Value) (interp.Value, error) {
		if len(args) != 1 {
			return nil, interp.NewPyError("TypeError", "allgather(list)", pos)
		}
		l, ok := args[0].(*interp.List)
		if !ok {
			return nil, interp.NewPyError("TypeError", "allgather argument must be a list", pos)
		}
		var local []float64
		if fs, isF := l.FloatData(); isF {
			local = fs
		} else {
			local = make([]float64, l.Len())
			for i := range local {
				f, ok := interp.AsFloat(l.Get(i))
				if !ok {
					return nil, interp.NewPyError("TypeError", "allgather list must hold numbers", pos)
				}
				local[i] = f
			}
		}
		all, err := c.Allgather(local)
		if err != nil {
			return nil, interp.NewPyError("RuntimeError", err.Error(), pos)
		}
		return interp.AdoptFloats(all), nil
	})
	return m
}
