package bench

import (
	"fmt"
	"sort"
	"strings"

	"github.com/omp4go/omp4go/internal/directive"
	"github.com/omp4go/omp4go/internal/minipy"
)

// StaticFeatures summarizes the OpenMP usage of one benchmark source
// — the static characteristics reported in Table I.
type StaticFeatures struct {
	Name string
	// Directives are the distinct canonical directive names used, in
	// first-appearance order, with reduction operators attached
	// (e.g. "parallel for reduction(+)").
	Directives []string
	// Synchronization is "Explicit barrier" when a standalone
	// barrier directive appears, else "Implicit barriers".
	Synchronization string
	// Clauses counts every clause kind used.
	Clauses map[string]int
}

// AnalyzeStatic extracts the static OpenMP features of a registered
// benchmark by parsing its source and every directive string in it.
func AnalyzeStatic(name string) (*StaticFeatures, error) {
	b, ok := Registry[name]
	if !ok {
		return nil, fmt.Errorf("bench: unknown benchmark %q", name)
	}
	mod, err := minipy.Parse(b.Source, name+".py")
	if err != nil {
		return nil, err
	}
	sf := &StaticFeatures{Name: name, Clauses: make(map[string]int)}
	seen := map[string]bool{}
	explicitBarrier := false

	record := func(raw string) error {
		d, err := directive.Parse(raw)
		if err != nil {
			return err
		}
		if d.Name == directive.NameBarrier {
			explicitBarrier = true
		}
		label := string(d.Name)
		for _, cl := range d.Clauses {
			sf.Clauses[cl.Kind.String()]++
			if cl.Kind == directive.ClauseReduction {
				label += fmt.Sprintf(" reduction(%s)", cl.Op)
			}
			if cl.Kind == directive.ClauseIf && d.Name == directive.NameTask {
				label += " with if clause"
			}
		}
		if !seen[label] {
			seen[label] = true
			sf.Directives = append(sf.Directives, label)
		}
		return nil
	}

	var walkStmts func(body []minipy.Stmt) error
	var walkStmt func(s minipy.Stmt) error
	walkStmt = func(s minipy.Stmt) error {
		switch t := s.(type) {
		case *minipy.With:
			if len(t.Items) == 1 {
				if raw, ok := directiveString(t.Items[0].Context); ok {
					if err := record(raw); err != nil {
						return err
					}
				}
			}
			return walkStmts(t.Body)
		case *minipy.ExprStmt:
			if raw, ok := directiveString(t.X); ok {
				return record(raw)
			}
			return nil
		case *minipy.FuncDef:
			return walkStmts(t.Body)
		case *minipy.If:
			if err := walkStmts(t.Body); err != nil {
				return err
			}
			return walkStmts(t.Else)
		case *minipy.While:
			return walkStmts(t.Body)
		case *minipy.For:
			return walkStmts(t.Body)
		case *minipy.Try:
			if err := walkStmts(t.Body); err != nil {
				return err
			}
			for _, h := range t.Handlers {
				if err := walkStmts(h.Body); err != nil {
					return err
				}
			}
			return walkStmts(t.Final)
		}
		return nil
	}
	walkStmts = func(body []minipy.Stmt) error {
		for _, s := range body {
			if err := walkStmt(s); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walkStmts(mod.Body); err != nil {
		return nil, err
	}
	if explicitBarrier {
		sf.Synchronization = "Explicit barrier"
	} else {
		sf.Synchronization = "Implicit barriers"
	}
	return sf, nil
}

// directiveString recognizes omp("...") expressions.
func directiveString(e minipy.Expr) (string, bool) {
	call, ok := e.(*minipy.Call)
	if !ok {
		return "", false
	}
	n, ok := call.Fn.(*minipy.Name)
	if !ok || n.ID != "omp" || len(call.Args) != 1 {
		return "", false
	}
	s, ok := call.Args[0].(*minipy.StrLit)
	if !ok {
		return "", false
	}
	return s.V, true
}

// TableI renders the Table I census for the numerical benchmarks.
func TableI() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s | %-60s | %s\n", "Benchmark", "OpenMP Features", "Synchronization")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 100))
	names := make([]string, 0, len(Names))
	for _, n := range Names {
		if Registry[n].Numerical {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		sf, err := AnalyzeStatic(name)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-10s | %-60s | %s\n", name,
			strings.Join(sf.Directives, ", "), sf.Synchronization)
	}
	return b.String(), nil
}
