package bench

import (
	"fmt"
	"math"

	"github.com/omp4go/omp4go/internal/mpi"
	"github.com/omp4go/omp4go/omp"
)

// Halo-exchange jacobi: the classic 2D 5-point stencil distributed by
// row blocks, the workload the TCP transport's batching and overlap
// machinery exists for. Each iteration a rank ships its first and
// last owned rows to its neighbors as several chunked Isends (which
// coalesce into one wire batch per neighbor), posts Irecvs for the
// ghost rows, and — while those messages are in flight — updates its
// interior rows on the OpenMP worker pool. Only the two boundary rows
// wait for communication.
//
// Determinism: each cell update reads only neighboring cells and
// performs a fixed arithmetic expression, so the grid after k sweeps
// is bit-identical for every decomposition and every transport. The
// residual is a serial per-rank sum combined by the deterministic
// Allreduce tree, so it is bit-identical across transports at equal
// world size (though not across different world sizes, where the
// summation order differs). The differential tests pin both.

// HaloConfig sizes one distributed stencil run.
type HaloConfig struct {
	// Rows, Cols is the interior grid (boundary cells surround it and
	// stay fixed). Rows must be at least the world size.
	Rows, Cols int
	// Iters is the fixed sweep count (no early exit, for determinism).
	Iters int
	// Seed drives the deterministic initial grid.
	Seed int64
	// Threads is the OpenMP team size for interior updates.
	Threads int
	// Chunks splits each boundary row into this many messages — the
	// coalescing fodder; one wire batch per neighbor carries all of
	// them. Clamped to [1, Cols].
	Chunks int
}

func (cfg *HaloConfig) norm() {
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	if cfg.Chunks < 1 {
		cfg.Chunks = 1
	}
	if cfg.Chunks > cfg.Cols {
		cfg.Chunks = cfg.Cols
	}
}

// HaloResult is one rank's view of the finished run — identical on
// every rank (Allgather/Allreduce leave the same bits everywhere).
type HaloResult struct {
	// Residual is the global L1 update norm of the final sweep.
	Residual float64
	// Cells is the full interior grid, row-major, Rows*Cols values.
	Cells []float64
}

// haloInit is the deterministic initial value of global grid cell
// (gi, gj) — a splitmix64-style hash of the coordinates and seed, so
// every rank materializes its slab without communication.
func haloInit(gi, gj int, seed int64) float64 {
	h := uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(gi)*0xBF58476D1CE4E5B9 ^ uint64(gj)*0x94D049BB133111EB
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return float64(h%1024) / 1024
}

// stencilRow updates one local row's interior columns in next from
// cur: the 4-neighbor average, written to disjoint cells so rows can
// update in parallel.
func stencilRow(cur, next []float64, li, w, cols int) {
	base := li * w
	for j := 1; j <= cols; j++ {
		next[base+j] = 0.25 * (cur[base-w+j] + cur[base+w+j] + cur[base+j-1] + cur[base+j+1])
	}
}

// chunkRanges splits the interior column span [1, cols+1) into n
// near-equal half-open ranges.
func chunkRanges(cols, n int) [][2]int {
	out := make([][2]int, n)
	for k := 0; k < n; k++ {
		out[k] = [2]int{1 + k*cols/n, 1 + (k+1)*cols/n}
	}
	return out
}

// RunHaloJacobi executes cfg.Iters sweeps of the distributed stencil
// on communicator c and returns the assembled grid. It works — and
// produces identical bits — on any transport.
func RunHaloJacobi(c *mpi.Comm, cfg HaloConfig) (HaloResult, error) {
	cfg.norm()
	rank, size := c.Rank(), c.Size()
	if cfg.Rows < size {
		return HaloResult{}, fmt.Errorf("bench: %d grid rows cannot split over %d ranks", cfg.Rows, size)
	}
	// Rank owns global interior rows [lo, hi) — global grid rows
	// lo+1..hi; local row li maps to global grid row lo+li, with local
	// rows 0 and nloc+1 the ghost (or fixed global boundary) rows.
	lo := rank * cfg.Rows / size
	hi := (rank + 1) * cfg.Rows / size
	nloc := hi - lo
	w := cfg.Cols + 2
	cur := make([]float64, (nloc+2)*w)
	next := make([]float64, (nloc+2)*w)
	for li := 0; li <= nloc+1; li++ {
		for j := 0; j < w; j++ {
			cur[li*w+j] = haloInit(lo+li, j, cfg.Seed)
		}
	}
	copy(next, cur) // fixed boundary cells must be present in both planes

	inst := omp.NewRuntime(omp.WithDefaultNumThreads(cfg.Threads))
	defer inst.Close()

	up, down := rank-1, rank+1 // neighbor ranks; -1 / size mean global boundary
	chunks := chunkRanges(cfg.Cols, cfg.Chunks)
	residual := 0.0
	for it := 0; it < cfg.Iters; it++ {
		// Tag parity separates adjacent iterations: the per-iteration
		// Allreduce bounds rank skew to one sweep, so parity plus the
		// chunk index matches every message unambiguously.
		par := (it % 2) * cfg.Chunks

		// Post ghost receives, then ship boundary rows as chunked
		// Isends; FlushAll turns each neighbor's chunk set into one
		// coalesced wire batch.
		var upReqs, downReqs []*mpi.RecvRequest
		if up >= 0 {
			for k := range chunks {
				upReqs = append(upReqs, c.Irecv(up, par+k))
			}
			row := cur[w : 2*w]
			for k, cr := range chunks {
				if _, err := c.Isend(up, par+k, row[cr[0]:cr[1]]); err != nil {
					return HaloResult{}, err
				}
			}
		}
		if down < size {
			for k := range chunks {
				downReqs = append(downReqs, c.Irecv(down, par+k))
			}
			row := cur[nloc*w : (nloc+1)*w]
			for k, cr := range chunks {
				if _, err := c.Isend(down, par+k, row[cr[0]:cr[1]]); err != nil {
					return HaloResult{}, err
				}
			}
		}
		if err := c.FlushAll(); err != nil {
			return HaloResult{}, err
		}

		// Interior rows need no ghosts: update them on the worker pool
		// while the halo messages fly.
		if nloc > 2 {
			if err := inst.Parallel(func(tc *omp.TC) {
				_ = tc.For(2, nloc, func(li int) { stencilRow(cur, next, li, w, cfg.Cols) })
			}); err != nil {
				return HaloResult{}, err
			}
		}

		// Ghosts in, then the two communication-dependent rows.
		for k, r := range upReqs {
			data, err := r.Wait()
			if err != nil {
				return HaloResult{}, err
			}
			copy(cur[chunks[k][0]:chunks[k][1]], data)
		}
		for k, r := range downReqs {
			data, err := r.Wait()
			if err != nil {
				return HaloResult{}, err
			}
			copy(cur[(nloc+1)*w+chunks[k][0]:(nloc+1)*w+chunks[k][1]], data)
		}
		stencilRow(cur, next, 1, w, cfg.Cols)
		if nloc > 1 {
			stencilRow(cur, next, nloc, w, cfg.Cols)
		}

		// Serial per-rank residual in fixed order, combined by the
		// deterministic reduction tree.
		res := 0.0
		for li := 1; li <= nloc; li++ {
			for j := 1; j <= cfg.Cols; j++ {
				res += math.Abs(next[li*w+j] - cur[li*w+j])
			}
		}
		gres, err := c.Allreduce(res, mpi.OpSum)
		if err != nil {
			return HaloResult{}, err
		}
		residual = gres
		cur, next = next, cur
	}

	// Assemble the full interior everywhere (rank order = row order).
	local := make([]float64, 0, nloc*cfg.Cols)
	for li := 1; li <= nloc; li++ {
		local = append(local, cur[li*w+1:li*w+1+cfg.Cols]...)
	}
	cells, err := c.Allgather(local)
	if err != nil {
		return HaloResult{}, err
	}
	return HaloResult{Residual: residual, Cells: cells}, nil
}

// SequentialHaloJacobi is the single-process reference: the same
// sweeps with no communication. Grid cells match any distributed run
// bit for bit; the residual matches a 1-rank distributed run.
func SequentialHaloJacobi(cfg HaloConfig) HaloResult {
	cfg.norm()
	w := cfg.Cols + 2
	n := cfg.Rows
	cur := make([]float64, (n+2)*w)
	next := make([]float64, (n+2)*w)
	for li := 0; li <= n+1; li++ {
		for j := 0; j < w; j++ {
			cur[li*w+j] = haloInit(li, j, cfg.Seed)
		}
	}
	copy(next, cur)
	residual := 0.0
	for it := 0; it < cfg.Iters; it++ {
		for li := 1; li <= n; li++ {
			stencilRow(cur, next, li, w, cfg.Cols)
		}
		res := 0.0
		for li := 1; li <= n; li++ {
			for j := 1; j <= cfg.Cols; j++ {
				res += math.Abs(next[li*w+j] - cur[li*w+j])
			}
		}
		residual = res
		cur, next = next, cur
	}
	cells := make([]float64, 0, n*cfg.Cols)
	for li := 1; li <= n; li++ {
		cells = append(cells, cur[li*w+1:li*w+1+cfg.Cols]...)
	}
	return HaloResult{Residual: residual, Cells: cells}
}
