package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"github.com/omp4go/omp4go/internal/metrics"
	"github.com/omp4go/omp4go/internal/mpi"
)

// TestMain doubles as the rank entry point for the multi-process
// differential tests: a child rank is this test binary re-executed
// with OMP4GO_BENCH_TEST_HELPER=halo-rank and OMP4GO_MPI_* set.
func TestMain(m *testing.M) {
	if os.Getenv("OMP4GO_BENCH_TEST_HELPER") == "halo-rank" {
		os.Exit(haloRankMain())
	}
	os.Exit(m.Run())
}

// haloWire is one rank's result, round-tripped through JSON as raw
// float bits so the comparison is exact.
type haloWire struct {
	ResidualBits uint64
	CellBits     []uint64
	Msgs         int64
	Coalesced    int64
}

func toWire(res HaloResult, snap *metrics.Snapshot) haloWire {
	w := haloWire{
		ResidualBits: math.Float64bits(res.Residual),
		CellBits:     make([]uint64, len(res.Cells)),
	}
	for i, v := range res.Cells {
		w.CellBits[i] = math.Float64bits(v)
	}
	if snap != nil {
		w.Msgs = snap.Counters[metrics.MPIMsgs]
		w.Coalesced = snap.Counters[metrics.MPICoalesced]
	}
	return w
}

// haloRankMain is the child-process body: join the TCP world, run the
// distributed stencil, write the result as JSON for the parent test.
func haloRankMain() int {
	fail := func(code int, err error) int {
		fmt.Fprintln(os.Stderr, "halo rank helper:", err)
		return code
	}
	tcpCfg, ok, err := mpi.EnvTCPConfig(os.Getenv)
	if !ok || err != nil {
		return fail(2, fmt.Errorf("tcp config (ok=%v): %w", ok, err))
	}
	var hcfg HaloConfig
	if err := json.Unmarshal([]byte(os.Getenv("OMP4GO_HALO_CFG")), &hcfg); err != nil {
		return fail(2, err)
	}
	reg := metrics.New()
	tcpCfg.Metrics = reg
	c, err := mpi.ConnectTCP(tcpCfg)
	if err != nil {
		return fail(3, err)
	}
	defer c.Close()
	res, err := RunHaloJacobi(c, hcfg)
	if err != nil {
		return fail(4, err)
	}
	blob, err := json.Marshal(toWire(res, reg.Snapshot()))
	if err != nil {
		return fail(5, err)
	}
	if err := os.WriteFile(os.Getenv("OMP4GO_HALO_OUT"), blob, 0o644); err != nil {
		return fail(5, err)
	}
	return 0
}

var haloTestConfig = HaloConfig{Rows: 19, Cols: 11, Iters: 6, Seed: 42, Threads: 2, Chunks: 3}

// runHaloLocal runs the stencil on the in-process transport and
// returns rank 0's result (all ranks produce identical bits — the
// collectives guarantee it, and the run asserts it).
func runHaloLocal(t *testing.T, nranks int, cfg HaloConfig) haloWire {
	t.Helper()
	results := make([]haloWire, nranks)
	err := mpi.Run(nranks, nil, func(c *mpi.Comm) error {
		res, err := RunHaloJacobi(c, cfg)
		if err != nil {
			return err
		}
		results[c.Rank()] = toWire(res, nil)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < nranks; r++ {
		if results[r].ResidualBits != results[0].ResidualBits {
			t.Fatalf("rank %d residual bits differ from rank 0", r)
		}
	}
	return results[0]
}

// TestHaloMatchesSequential pins decomposition independence: the grid
// after k sweeps is bit-identical no matter how many ranks computed
// it, and a 1-rank run reproduces the sequential residual exactly.
func TestHaloMatchesSequential(t *testing.T) {
	seq := toWire(SequentialHaloJacobi(haloTestConfig), nil)
	for _, nranks := range []int{1, 2, 3} {
		dist := runHaloLocal(t, nranks, haloTestConfig)
		if len(dist.CellBits) != len(seq.CellBits) {
			t.Fatalf("%d ranks: %d cells, sequential has %d", nranks, len(dist.CellBits), len(seq.CellBits))
		}
		for i := range seq.CellBits {
			if dist.CellBits[i] != seq.CellBits[i] {
				t.Fatalf("%d ranks: cell %d bits differ from sequential", nranks, i)
			}
		}
		if nranks == 1 && dist.ResidualBits != seq.ResidualBits {
			t.Fatal("1-rank residual differs from sequential")
		}
	}
}

// TestHaloCoalescesChunks pins that the chunked boundary sends
// actually ride coalesced batches (the overlap demo's message-count
// reduction, measured by omp4go_mpi_coalesced_total).
func TestHaloCoalescesChunks(t *testing.T) {
	reg := metrics.New()
	err := mpi.Run(2, nil, func(c *mpi.Comm) error {
		c.AttachMetrics(reg)
		_, err := RunHaloJacobi(c, haloTestConfig)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters[metrics.MPICoalesced] == 0 {
		t.Fatalf("no coalesced messages (msgs=%d) with %d chunks per boundary row",
			snap.Counters[metrics.MPIMsgs], haloTestConfig.Chunks)
	}
}

// TestHaloDifferentialTCP is the acceptance differential: the same
// stencil on 2 and 4 real rank processes over TCP produces the same
// bits as the in-process transport, and the chunked halo messages
// coalesce on the wire.
func TestHaloDifferentialTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	cfgJSON, err := json.Marshal(haloTestConfig)
	if err != nil {
		t.Fatal(err)
	}
	for _, nranks := range []int{2, 4} {
		t.Run(fmt.Sprintf("%dranks", nranks), func(t *testing.T) {
			local := runHaloLocal(t, nranks, haloTestConfig)
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			addr := ln.Addr().String()
			ln.Close()
			dir := t.TempDir()
			type child struct {
				cmd *exec.Cmd
				out string
				log *bytes.Buffer
			}
			children := make([]child, nranks)
			for r := 0; r < nranks; r++ {
				out := filepath.Join(dir, fmt.Sprintf("rank%d.json", r))
				cmd := exec.Command(os.Args[0])
				cmd.Env = append(os.Environ(),
					"OMP4GO_BENCH_TEST_HELPER=halo-rank",
					mpi.EnvMPIAddr+"="+addr,
					fmt.Sprintf("%s=%d", mpi.EnvMPIRank, r),
					fmt.Sprintf("%s=%d", mpi.EnvMPISize, nranks),
					"OMP4GO_HALO_CFG="+string(cfgJSON),
					"OMP4GO_HALO_OUT="+out,
				)
				log := &bytes.Buffer{}
				cmd.Stdout, cmd.Stderr = log, log
				if err := cmd.Start(); err != nil {
					t.Fatal(err)
				}
				children[r] = child{cmd: cmd, out: out, log: log}
			}
			timer := time.AfterFunc(90*time.Second, func() {
				for _, ch := range children {
					_ = ch.cmd.Process.Kill()
				}
			})
			defer timer.Stop()
			for r, ch := range children {
				if err := ch.cmd.Wait(); err != nil {
					t.Fatalf("rank %d process: %v\n%s", r, err, ch.log.String())
				}
			}
			for r, ch := range children {
				blob, err := os.ReadFile(ch.out)
				if err != nil {
					t.Fatalf("rank %d result: %v", r, err)
				}
				var got haloWire
				if err := json.Unmarshal(blob, &got); err != nil {
					t.Fatalf("rank %d result: %v", r, err)
				}
				if got.ResidualBits != local.ResidualBits {
					t.Errorf("rank %d: TCP residual bits %x != local %x", r, got.ResidualBits, local.ResidualBits)
				}
				if len(got.CellBits) != len(local.CellBits) {
					t.Fatalf("rank %d: %d cells, local has %d", r, len(got.CellBits), len(local.CellBits))
				}
				for i := range local.CellBits {
					if got.CellBits[i] != local.CellBits[i] {
						t.Fatalf("rank %d: cell %d bits differ between TCP and local transports", r, i)
					}
				}
				if got.Coalesced == 0 {
					t.Errorf("rank %d: no coalesced messages over TCP (msgs=%d)", r, got.Msgs)
				}
			}
		})
	}
}
