package bench

import (
	"errors"
	"testing"

	"github.com/omp4go/omp4go/internal/directive"
	"github.com/omp4go/omp4go/internal/pyomp"
	"github.com/omp4go/omp4go/internal/rt"
)

// smallArgs shrinks each benchmark for fast cross-mode validation.
var smallArgs = map[string][]int64{
	"fft":       {1 << 8, 42},
	"jacobi":    {48, 5, 42},
	"lu":        {48, 42},
	"md":        {32, 2, 42},
	"pi":        {50_000},
	"qsort":     {5_000, 42},
	"bfs":       {31, 42},
	"graphic":   {300, 8, 42},
	"wordcount": {400, 42},
	"wavefront": {12, 42},
}

func TestEveryBenchmarkEveryModeMatchesReference(t *testing.T) {
	for _, name := range Names {
		for _, mode := range AllOMP4PyModes {
			for _, threads := range []int{1, 4} {
				res, err := Validate(mode, name, RunConfig{
					Threads: threads,
					Args:    smallArgs[name],
				})
				if err != nil {
					t.Errorf("%s/%s/%dt: %v", name, mode, threads, err)
					continue
				}
				if res.Seconds < 0 {
					t.Errorf("%s/%s: negative time", name, mode)
				}
			}
		}
	}
}

func TestPyOMPSupportedBenchmarks(t *testing.T) {
	for _, name := range []string{"pi", "fft", "jacobi", "lu", "md"} {
		res, err := Validate(PyOMP, name, RunConfig{Threads: 4, Args: smallArgs[name]})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if res.Mode != PyOMP {
			t.Errorf("%s: mode %v", name, res.Mode)
		}
	}
}

func TestPyOMPUnsupportedBenchmarks(t *testing.T) {
	// §IV-A/B: qsort (task if), bfs (Numba error), graphic (Graph
	// object), wordcount (dicts) cannot run under PyOMP.
	for _, name := range []string{"qsort", "bfs", "graphic", "wordcount"} {
		_, err := Run(PyOMP, name, RunConfig{Threads: 2, Args: smallArgs[name]})
		if !errors.Is(err, pyomp.ErrUnsupported) {
			t.Errorf("%s: err = %v, want ErrUnsupported", name, err)
		}
	}
}

func TestSchedulePolicySweep(t *testing.T) {
	// Fig. 7: the schedule(runtime) benchmarks accept every policy
	// and still validate.
	for _, kind := range []directive.ScheduleKind{
		directive.ScheduleStatic, directive.ScheduleDynamic, directive.ScheduleGuided,
	} {
		for _, name := range []string{"graphic", "wordcount"} {
			_, err := Validate(Hybrid, name, RunConfig{
				Threads:  4,
				Args:     smallArgs[name],
				Schedule: rt.Schedule{Kind: kind, Chunk: 30},
			})
			if err != nil {
				t.Errorf("%s with %v: %v", name, kind, err)
			}
		}
	}
}

func TestGILAblationStillCorrect(t *testing.T) {
	for _, name := range []string{"pi", "wordcount"} {
		if _, err := Validate(Pure, name, RunConfig{
			Threads: 4, Args: smallArgs[name], GIL: true,
		}); err != nil {
			t.Errorf("%s under GIL: %v", name, err)
		}
	}
}

func TestContendedAllocToggle(t *testing.T) {
	if _, err := Validate(Pure, "pi", RunConfig{
		Threads: 2, Args: smallArgs["pi"], ContendedAllocOff: true,
	}); err != nil {
		t.Error(err)
	}
}

func TestParseMode(t *testing.T) {
	cases := map[int]Mode{-1: PyOMP, 0: Pure, 1: Hybrid, 2: Compiled, 3: CompiledDT}
	for n, want := range cases {
		got, err := ParseMode(n)
		if err != nil || got != want {
			t.Errorf("ParseMode(%d) = %v, %v", n, got, err)
		}
	}
	if _, err := ParseMode(7); err == nil {
		t.Error("ParseMode(7) accepted")
	}
}

func TestUnknownBenchmarkAndBadArgs(t *testing.T) {
	if _, err := Run(Pure, "nope", RunConfig{Threads: 1}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := Run(Pure, "pi", RunConfig{Threads: 1, Args: []int64{1, 2, 3}}); err == nil {
		t.Error("wrong arg count accepted")
	}
}

func TestDefaultArgsAreRegistered(t *testing.T) {
	for _, name := range Names {
		b := Registry[name]
		if b == nil {
			t.Fatalf("%s missing from registry", name)
		}
		if len(b.DefaultArgs) != len(b.ArgNames) || len(b.PaperArgs) != len(b.ArgNames) {
			t.Errorf("%s: arg metadata inconsistent", name)
		}
		if b.Reference == nil {
			t.Errorf("%s: no reference implementation", name)
		}
	}
}

func TestRegistryReferencesAreDeterministic(t *testing.T) {
	for _, name := range Names {
		b := Registry[name]
		a1 := b.Reference(smallArgs[name])
		a2 := b.Reference(smallArgs[name])
		if a1 != a2 {
			t.Errorf("%s: reference not deterministic (%v vs %v)", name, a1, a2)
		}
	}
}

func TestCompiledDTFasterThanPureOnPi(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	args := []int64{400_000}
	pure, err := Run(Pure, "pi", RunConfig{Threads: 1, Args: args})
	if err != nil {
		t.Fatal(err)
	}
	dt, err := Run(CompiledDT, "pi", RunConfig{Threads: 1, Args: args})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("pi 400k intervals: Pure %.4fs, CompiledDT %.4fs (%.1fx)",
		pure.Seconds, dt.Seconds, pure.Seconds/dt.Seconds)
	if dt.Seconds >= pure.Seconds {
		t.Errorf("CompiledDT (%.4fs) not faster than Pure (%.4fs)", dt.Seconds, pure.Seconds)
	}
}

func TestCollectMetrics(t *testing.T) {
	res, err := Run(Hybrid, "pi", RunConfig{
		Threads:        4,
		Args:           smallArgs["pi"],
		CollectMetrics: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	m := res.Metrics
	if m == nil {
		t.Fatal("CollectMetrics did not fill Result.Metrics")
	}
	if m.Regions < 1 || m.Records == 0 {
		t.Fatalf("metrics = %+v, want at least one region", m)
	}
	if m.LoadImbalance < 1.0 {
		t.Fatalf("LoadImbalance = %v, want >= 1", m.LoadImbalance)
	}
}

func TestTracingRejectedForPyOMP(t *testing.T) {
	_, err := Run(PyOMP, "pi", RunConfig{
		Threads:        2,
		Args:           smallArgs["pi"],
		CollectMetrics: true,
	})
	if err == nil {
		t.Fatal("PyOMP with tracing should be rejected")
	}
}
