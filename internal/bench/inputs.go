// Package bench implements the paper's evaluation: the nine
// benchmark programs as MiniPy sources (run through every OMP4Py
// execution mode), workload generators, the PyOMP baseline dispatch,
// sequential reference validation, and the timing harness behind
// every figure and table.
package bench

import (
	"github.com/omp4go/omp4go/internal/graph"
	"github.com/omp4go/omp4go/internal/interp"
	"github.com/omp4go/omp4go/internal/minipy"
	"github.com/omp4go/omp4go/internal/pyomp"
	"github.com/omp4go/omp4go/internal/textgen"
)

// installInputModules registers the bench and graphlib builtin
// modules: the benchmark inputs are generated natively from fixed
// seeds (the artifact's "synthetic data generated from a fixed
// seed"), exactly matching the bits the reference implementations
// consume, and graphlib plays the role NetworkX plays in §IV-B.
func installInputModules(in *interp.Interp) {
	pos := minipy.Position{}
	argErr := func(fn string) error {
		return interp.NewPyError("TypeError", fn+"(): invalid arguments", pos)
	}
	intArg := func(args []interp.Value, i int) (int64, bool) {
		if i >= len(args) {
			return 0, false
		}
		return interp.AsInt(args[i])
	}

	benchMod := &interp.Module{Name: "bench", Attrs: map[string]interp.Value{}}
	reg := func(name string, fn func(th *interp.Thread, args []interp.Value) (interp.Value, error)) {
		benchMod.Attrs[name] = &interp.Builtin{Name: name, Fn: fn}
	}

	reg("fft_input", func(th *interp.Thread, args []interp.Value) (interp.Value, error) {
		n, ok1 := intArg(args, 0)
		seed, ok2 := intArg(args, 1)
		if !ok1 || !ok2 {
			return nil, argErr("fft_input")
		}
		re, im := pyomp.FFTInput(int(n), seed)
		return &interp.Tuple{Elts: []interp.Value{
			interp.AdoptFloats(re), interp.AdoptFloats(im),
		}}, nil
	})
	reg("jacobi_input", func(th *interp.Thread, args []interp.Value) (interp.Value, error) {
		n, ok1 := intArg(args, 0)
		seed, ok2 := intArg(args, 1)
		if !ok1 || !ok2 {
			return nil, argErr("jacobi_input")
		}
		a, b := pyomp.JacobiInput(int(n), seed)
		return &interp.Tuple{Elts: []interp.Value{
			interp.AdoptFloats(a), interp.AdoptFloats(b),
		}}, nil
	})
	reg("lu_input", func(th *interp.Thread, args []interp.Value) (interp.Value, error) {
		n, ok1 := intArg(args, 0)
		seed, ok2 := intArg(args, 1)
		if !ok1 || !ok2 {
			return nil, argErr("lu_input")
		}
		return interp.AdoptFloats(pyomp.LUInput(int(n), seed)), nil
	})
	reg("md_input", func(th *interp.Thread, args []interp.Value) (interp.Value, error) {
		n, ok1 := intArg(args, 0)
		seed, ok2 := intArg(args, 1)
		if !ok1 || !ok2 {
			return nil, argErr("md_input")
		}
		pos, vel := pyomp.MDInput(int(n), seed)
		return &interp.Tuple{Elts: []interp.Value{
			interp.AdoptFloats(pos), interp.AdoptFloats(vel),
		}}, nil
	})
	reg("qsort_input", func(th *interp.Thread, args []interp.Value) (interp.Value, error) {
		n, ok1 := intArg(args, 0)
		seed, ok2 := intArg(args, 1)
		if !ok1 || !ok2 {
			return nil, argErr("qsort_input")
		}
		return interp.AdoptFloats(pyomp.QsortInput(int(n), seed)), nil
	})
	reg("maze_input", func(th *interp.Thread, args []interp.Value) (interp.Value, error) {
		n, ok1 := intArg(args, 0)
		seed, ok2 := intArg(args, 1)
		if !ok1 || !ok2 {
			return nil, argErr("maze_input")
		}
		return interp.AdoptInts(pyomp.MazeInput(int(n), seed)), nil
	})
	reg("corpus", func(th *interp.Thread, args []interp.Value) (interp.Value, error) {
		lines, ok1 := intArg(args, 0)
		seed, ok2 := intArg(args, 1)
		if !ok1 || !ok2 {
			return nil, argErr("corpus")
		}
		c := textgen.Generate(textgen.Options{Lines: int(lines), Seed: seed})
		vals := make([]interp.Value, len(c.Lines))
		for i, l := range c.Lines {
			vals[i] = l
		}
		return interp.NewList(vals), nil
	})
	in.RegisterModule(benchMod)

	graphMod := &interp.Module{Name: "graphlib", Attrs: map[string]interp.Value{}}
	greg := func(name string, fn func(th *interp.Thread, args []interp.Value) (interp.Value, error)) {
		graphMod.Attrs[name] = &interp.Builtin{Name: name, Fn: fn}
	}
	asGraph := func(v interp.Value) (*graph.Graph, bool) {
		g, ok := v.(*graph.Graph)
		return g, ok
	}
	greg("random_graph", func(th *interp.Thread, args []interp.Value) (interp.Value, error) {
		n, ok1 := intArg(args, 0)
		d, ok2 := intArg(args, 1)
		seed, ok3 := intArg(args, 2)
		if !ok1 || !ok2 || !ok3 {
			return nil, argErr("random_graph")
		}
		return graph.Random(int(n), int(d), seed), nil
	})
	greg("clustering", func(th *interp.Thread, args []interp.Value) (interp.Value, error) {
		if len(args) != 2 {
			return nil, argErr("clustering")
		}
		g, ok := asGraph(args[0])
		u, ok2 := interp.AsInt(args[1])
		if !ok || !ok2 {
			return nil, argErr("clustering")
		}
		return g.Clustering(int(u)), nil
	})
	greg("number_of_nodes", func(th *interp.Thread, args []interp.Value) (interp.Value, error) {
		g, ok := asGraph(args[0])
		if !ok {
			return nil, argErr("number_of_nodes")
		}
		return int64(g.N()), nil
	})
	greg("degree", func(th *interp.Thread, args []interp.Value) (interp.Value, error) {
		g, ok := asGraph(args[0])
		u, ok2 := interp.AsInt(args[1])
		if !ok || !ok2 {
			return nil, argErr("degree")
		}
		return int64(g.Degree(int(u))), nil
	})
	greg("neighbors", func(th *interp.Thread, args []interp.Value) (interp.Value, error) {
		g, ok := asGraph(args[0])
		u, ok2 := interp.AsInt(args[1])
		if !ok || !ok2 {
			return nil, argErr("neighbors")
		}
		ns := g.Neighbors(int(u))
		out := make([]int64, len(ns))
		for i, v := range ns {
			out[i] = int64(v)
		}
		return interp.AdoptInts(out), nil
	})
	greg("has_edge", func(th *interp.Thread, args []interp.Value) (interp.Value, error) {
		g, ok := asGraph(args[0])
		u, ok2 := interp.AsInt(args[1])
		v, ok3 := interp.AsInt(args[2])
		if !ok || !ok2 || !ok3 {
			return nil, argErr("has_edge")
		}
		return g.HasEdge(int(u), int(v)), nil
	})
	in.RegisterModule(graphMod)
}
