package ompt

// multiTool fans one event stream out to several tools in order.
type multiTool struct {
	tools []Tool
}

// Multi combines tools into a single Tool that forwards every event
// to each of them in argument order: the runtime supports one
// attached tool, so coexisting consumers — a Tracer exporting Chrome
// traces next to a live metrics bridge, or two tracers with different
// ring sizes — attach through Multi. Nil entries are dropped; with
// one remaining tool it is returned unwrapped (no forwarding cost),
// and with none Multi returns nil (which detaches when passed to
// SetTool). The combined tool is as concurrency-safe as its parts:
// Emit fans out on the emitting thread.
func Multi(tools ...Tool) Tool {
	kept := make([]Tool, 0, len(tools))
	for _, t := range tools {
		if t == nil {
			continue
		}
		// Flatten nested Multis so deep compositions stay one hop.
		if m, ok := t.(*multiTool); ok {
			kept = append(kept, m.tools...)
			continue
		}
		kept = append(kept, t)
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return &multiTool{tools: kept}
}

// Emit forwards the record to every combined tool.
func (m *multiTool) Emit(rec Record) {
	for _, t := range m.tools {
		t.Emit(rec)
	}
}

// Tools returns the tools a combined Tool forwards to: the children
// of a Multi composition, or the tool itself. Consumers use it to
// find a specific tool (e.g. a Tracer) inside a composition.
func Tools(t Tool) []Tool {
	if t == nil {
		return nil
	}
	if m, ok := t.(*multiTool); ok {
		return m.tools
	}
	return []Tool{t}
}
