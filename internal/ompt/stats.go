package ompt

import "sort"

// ThreadStats aggregates one thread's events.
type ThreadStats struct {
	GTID   int32
	Events int
	// Chunks and Iterations count worksharing-loop work claimed by
	// the thread; WorkNS is the time spent executing it plus
	// explicit-task bodies.
	Chunks     int
	Iterations int64
	WorkNS     int64
	// Barriers counts barrier passages; BarrierWaitNS is the
	// accumulated wait time (task execution while waiting excluded).
	Barriers      int
	BarrierWaitNS int64
	// CriticalWaitNS is time spent contending for critical sections;
	// CriticalHeldNS time spent holding them.
	CriticalWaitNS int64
	CriticalHeldNS int64
	TasksRun       int
	// TasksStolen counts tasks this thread claimed from another
	// member's deque (work-stealing scheduler).
	TasksStolen int
}

// Stats is the aggregate view of one trace: where the team's time
// went, and how evenly the work was spread.
type Stats struct {
	Threads []ThreadStats // sorted by GTID

	Regions      int
	TasksCreated int
	// MaxQueueDepth is the deepest observed task queue (outstanding
	// explicit tasks at any submission).
	MaxQueueDepth int64
	// TasksStolen totals cross-thread deque steals; TaskOverflows
	// counts submissions that spilled to the shared overflow list.
	TasksStolen   int
	TaskOverflows int
	// TaskDependsResolved counts dependence-gated tasks released to
	// the scheduler; Taskgroups counts taskgroup regions opened.
	TaskDependsResolved int
	Taskgroups          int
	// KernelLoops counts worksharing-loop member shares executed by
	// compiled static-schedule kernels (no per-chunk events follow).
	KernelLoops int

	TotalBarrierWaitNS  int64
	TotalCriticalWaitNS int64

	// LoadImbalance is max(thread work time) / mean(thread work
	// time) over threads that executed any work; 1.0 is perfectly
	// balanced. Zero when no work was traced.
	LoadImbalance float64

	// SpanNS is the time between the first and last event.
	SpanNS int64

	Records int
	Dropped uint64
}

// ComputeStats aggregates a sorted or unsorted record stream.
func ComputeStats(recs []Record, dropped uint64) *Stats {
	s := &Stats{Records: len(recs), Dropped: dropped}
	if len(recs) == 0 {
		return s
	}
	byThread := make(map[int32]*ThreadStats)
	th := func(gtid int32) *ThreadStats {
		t, ok := byThread[gtid]
		if !ok {
			t = &ThreadStats{GTID: gtid}
			byThread[gtid] = t
		}
		return t
	}
	minT, maxT := recs[0].Time, recs[0].Time
	for _, r := range recs {
		if r.Time < minT {
			minT = r.Time
		}
		if end := r.Time; end > maxT {
			maxT = end
		}
		t := th(r.GTID)
		t.Events++
		switch r.Kind {
		case EvParallelBegin:
			s.Regions++
		case EvBarrierExit:
			t.Barriers++
			t.BarrierWaitNS += r.Dur
			s.TotalBarrierWaitNS += r.Dur
		case EvLoopChunk:
			t.Chunks++
			t.Iterations += r.B - r.A
			t.WorkNS += r.Dur
		case EvTaskCreate:
			s.TasksCreated++
			if r.B > s.MaxQueueDepth {
				s.MaxQueueDepth = r.B
			}
		case EvTaskEnd:
			t.TasksRun++
			t.WorkNS += r.Dur
		case EvTaskSteal:
			t.TasksStolen++
			s.TasksStolen++
		case EvTaskOverflow:
			s.TaskOverflows++
		case EvTaskDependResolved:
			s.TaskDependsResolved++
		case EvTaskgroupBegin:
			s.Taskgroups++
		case EvKernelEnter:
			s.KernelLoops++
		case EvCriticalAcquire:
			t.CriticalWaitNS += r.Dur
			s.TotalCriticalWaitNS += r.Dur
		case EvCriticalRelease:
			t.CriticalHeldNS += r.Dur
		}
	}
	s.SpanNS = maxT - minT
	for _, t := range byThread {
		s.Threads = append(s.Threads, *t)
	}
	sort.Slice(s.Threads, func(i, j int) bool { return s.Threads[i].GTID < s.Threads[j].GTID })

	var busy []int64
	for _, t := range s.Threads {
		if t.WorkNS > 0 {
			busy = append(busy, t.WorkNS)
		}
	}
	if len(busy) > 0 {
		var max, sum int64
		for _, w := range busy {
			sum += w
			if w > max {
				max = w
			}
		}
		mean := float64(sum) / float64(len(busy))
		if mean > 0 {
			s.LoadImbalance = float64(max) / mean
		}
	}
	return s
}
