// Package ompt is omp4go's runtime observability subsystem, modelled
// on the OMPT tool interface of the OpenMP specification. The runtime
// (internal/rt) emits typed events — parallel region begin/end,
// barrier enter/exit with wait-time, worksharing chunk dispatch, task
// lifecycle, critical-section contention, reduction merges — to an
// attached Tool. With no tool attached the entire subsystem costs one
// predictable nil-check branch per hook site.
//
// The built-in Tracer collects events into per-thread lock-free ring
// buffers and exports them as a Chrome trace_event JSON (open in
// chrome://tracing or Perfetto) or as an aggregated text summary
// (per-thread wait time, load-imbalance factor, task-queue depth).
package ompt

import "time"

// EventKind identifies one runtime event type.
type EventKind uint8

// Runtime event kinds. The comments document how the Record fields A,
// B, Dur and Label are used for each kind.
const (
	EvNone EventKind = iota
	// EvParallelBegin: a parallel region forks. A = region id,
	// B = team size. Emitted on the encountering thread.
	EvParallelBegin
	// EvParallelEnd: the region joined. A = region id, B = team size,
	// Dur = region wall time.
	EvParallelEnd
	// EvImplicitTaskBegin: a team member starts its implicit task.
	// A = region id, B = thread number within the team.
	EvImplicitTaskBegin
	// EvImplicitTaskEnd: the member's implicit task finished
	// (after the region-end barrier). A = region id, B = thread num.
	EvImplicitTaskEnd
	// EvBarrierEnter: the thread arrives at a barrier.
	// A = BarrierImplicit or BarrierExplicit, B = barrier epoch.
	EvBarrierEnter
	// EvBarrierExit: the thread leaves the barrier. A = kind,
	// B = epoch, Dur = wait time (time in the barrier minus time
	// spent executing stolen tasks while waiting).
	EvBarrierExit
	// EvLoopBegin: a worksharing loop starts on this thread.
	// A = total (collapsed) iteration count, B = chunk size,
	// Label = schedule kind ("static", "dynamic", "guided").
	EvLoopBegin
	// EvLoopChunk: one claimed chunk finished executing. A = chunk
	// lower bound, B = exclusive upper bound (linear iteration
	// space), Dur = chunk execution time.
	EvLoopChunk
	// EvLoopEnd: the loop construct completed on this thread
	// (before its implicit barrier, if any).
	EvLoopEnd
	// EvTaskCreate: an explicit task was submitted. A = task id,
	// B = task-queue depth after submission (outstanding tasks);
	// Label = "undeferred" when the task runs inline.
	EvTaskCreate
	// EvTaskBegin: an explicit task starts executing. A = task id.
	EvTaskBegin
	// EvTaskEnd: an explicit task completed. A = task id,
	// Dur = execution time.
	EvTaskEnd
	// EvTaskSteal: a thread claimed a task from another team member's
	// deque (work-stealing scheduler). A = task id, B = victim thread
	// number. Emitted on the thief.
	EvTaskSteal
	// EvTaskOverflow: a submitted task spilled to the scheduler's
	// shared overflow list because the submitting thread's deque was
	// full. A = task id, B = outstanding-task depth at submission.
	EvTaskOverflow
	// EvCriticalAcquire: a critical section was entered.
	// Label = section name, Dur = contention wait time.
	EvCriticalAcquire
	// EvCriticalRelease: the critical section was left.
	// Label = section name, Dur = time the section was held.
	EvCriticalRelease
	// EvReduceMerge: one thread's reduction partial was merged into
	// the shared result. Label = reduction identifier.
	EvReduceMerge
	// EvTaskDependResolved: a dependence-gated task's last depend
	// predecessor completed and the task entered the scheduler.
	// A = released task id, B = completing predecessor's task id.
	// Emitted on the thread that resolved the final dependence.
	EvTaskDependResolved
	// EvTaskgroupBegin: the thread opened a taskgroup region.
	// A = taskgroup id.
	EvTaskgroupBegin
	// EvTaskgroupEnd: the taskgroup's scoped wait completed.
	// A = taskgroup id, Dur = begin-to-end wall time,
	// Label = "cancelled" when the group was cancelled.
	EvTaskgroupEnd
	// EvKernelEnter: a compiled loop kernel took over this member's
	// share of a worksharing loop (internal/compile's static-schedule
	// fast path; no EvLoopChunk events follow from this member).
	// A = total (linear) iteration count, B = static chunk size
	// (0 = block partition), Label = schedule kind.
	EvKernelEnter
)

// String returns the event kind name.
func (k EventKind) String() string {
	switch k {
	case EvParallelBegin:
		return "parallel-begin"
	case EvParallelEnd:
		return "parallel-end"
	case EvImplicitTaskBegin:
		return "implicit-task-begin"
	case EvImplicitTaskEnd:
		return "implicit-task-end"
	case EvBarrierEnter:
		return "barrier-enter"
	case EvBarrierExit:
		return "barrier-exit"
	case EvLoopBegin:
		return "loop-begin"
	case EvLoopChunk:
		return "loop-chunk"
	case EvLoopEnd:
		return "loop-end"
	case EvTaskCreate:
		return "task-create"
	case EvTaskBegin:
		return "task-begin"
	case EvTaskEnd:
		return "task-end"
	case EvTaskSteal:
		return "task-steal"
	case EvTaskOverflow:
		return "task-overflow"
	case EvCriticalAcquire:
		return "critical-acquire"
	case EvCriticalRelease:
		return "critical-release"
	case EvReduceMerge:
		return "reduce-merge"
	case EvTaskDependResolved:
		return "task-depend-resolved"
	case EvTaskgroupBegin:
		return "taskgroup-begin"
	case EvTaskgroupEnd:
		return "taskgroup-end"
	case EvKernelEnter:
		return "kernel-enter"
	}
	return "event(?)"
}

// Barrier kinds carried in the A field of barrier events.
const (
	// BarrierImplicit marks the implicit barrier at the end of a
	// parallel region or worksharing construct.
	BarrierImplicit int64 = 0
	// BarrierExplicit marks a user barrier directive.
	BarrierExplicit int64 = 1
)

// Record is one runtime event. Field use varies by Kind; see the
// EventKind constants.
type Record struct {
	// Time is nanoseconds since the process trace epoch (Now).
	Time int64
	// Dur is a duration in nanoseconds for completion events
	// (barrier wait, chunk execution, task execution, lock hold).
	Dur int64
	// A and B are kind-specific payloads (region/task ids, bounds,
	// epochs, queue depths).
	A, B int64
	// GTID is the emitting thread's global trace id, unique across
	// all teams and nesting levels of one runtime instance.
	GTID int32
	// Team is the id of the innermost parallel region the thread
	// belongs to.
	Team int32
	// Kind identifies the event.
	Kind EventKind
	// Label carries names: schedule kind, critical-section name,
	// reduction identifier.
	Label string
}

// Tool receives runtime events. Emit is called from every team
// thread concurrently and must be safe for concurrent use; the
// built-in Tracer routes each thread to its own lock-free ring.
type Tool interface {
	Emit(rec Record)
}

// epoch anchors the trace clock; all Record.Time values are offsets
// from it, which keeps Chrome-trace timestamps small.
var epoch = time.Now()

// Now returns the trace clock: monotonic nanoseconds since the
// process trace epoch.
func Now() int64 { return int64(time.Since(epoch)) }
