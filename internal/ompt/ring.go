package ompt

import "sync/atomic"

// DefaultRingSize is the per-thread ring capacity (records) used when
// a Tracer is created with size 0. At 16384 records × ~80 bytes a
// busy thread holds ~1.3 MB of trace.
const DefaultRingSize = 1 << 14

// ring is a single-producer ring buffer of records. Exactly one
// goroutine (the owning thread) pushes; readers snapshot only after
// the producer has quiesced (after the enclosing parallel region
// joined), so pushes need no locks: the write cursor is published
// with a single atomic store. When the ring wraps, the oldest records
// are overwritten and counted as dropped — tracing never blocks or
// unboundedly grows the traced program.
type ring struct {
	buf  []Record
	mask uint64
	// head is the total number of records ever pushed; the next
	// record lands at buf[head&mask].
	head atomic.Uint64
}

// newRing creates a ring with capacity rounded up to a power of two.
func newRing(size int) *ring {
	if size <= 0 {
		size = DefaultRingSize
	}
	capacity := 1
	for capacity < size {
		capacity <<= 1
	}
	return &ring{buf: make([]Record, capacity), mask: uint64(capacity - 1)}
}

// push appends one record, overwriting the oldest when full. Caller
// must be the ring's single producer.
func (r *ring) push(rec Record) {
	h := r.head.Load()
	r.buf[h&r.mask] = rec
	// Store-release publishes the record before the new cursor.
	r.head.Store(h + 1)
}

// snapshot returns the retained records in push order plus the count
// of records lost to wrapping. Call only while the producer is
// quiescent (e.g. after the traced parallel regions have joined).
func (r *ring) snapshot() (recs []Record, dropped uint64) {
	h := r.head.Load()
	n := uint64(len(r.buf))
	if h <= n {
		out := make([]Record, h)
		copy(out, r.buf[:h])
		return out, 0
	}
	// The ring wrapped: the oldest retained record is at head&mask.
	out := make([]Record, n)
	start := h & r.mask
	copy(out, r.buf[start:])
	copy(out[n-start:], r.buf[:start])
	return out, h - n
}
