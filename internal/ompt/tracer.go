package ompt

import (
	"sort"
	"sync"
)

// Tracer is the built-in Tool: it records events into one lock-free
// ring buffer per thread (keyed by GTID) and exports them after the
// fact. Emit takes no locks on the steady-state path — a sync.Map
// read plus a ring push — so the tracer perturbs the thread timings
// it measures as little as possible.
type Tracer struct {
	ringSize int
	// rings maps GTID -> *ring. Each ring has a single producer (the
	// thread owning that GTID); the map itself is lock-free to read.
	rings sync.Map
}

// NewTracer creates a tracer with the given per-thread ring capacity
// in records (0 means DefaultRingSize).
func NewTracer(ringSize int) *Tracer {
	return &Tracer{ringSize: ringSize}
}

// Emit records one event into the emitting thread's ring.
func (t *Tracer) Emit(rec Record) {
	v, ok := t.rings.Load(rec.GTID)
	if !ok {
		// First event from this thread: install its ring. LoadOrStore
		// keeps exactly one winner if the GTID were ever shared.
		v, _ = t.rings.LoadOrStore(rec.GTID, newRing(t.ringSize))
	}
	v.(*ring).push(rec)
}

// Records returns every retained event sorted by timestamp. Call
// after the traced parallel regions have joined; snapshotting a ring
// with a live producer is a data race.
func (t *Tracer) Records() []Record {
	recs, _ := t.collect()
	return recs
}

// Dropped returns the number of events lost to ring-buffer wrapping.
// Unlike Records it is safe to call with live producers — it reads
// only each ring's atomic cursor, never the buffers — so the /metrics
// endpoint can export it while regions are in flight.
func (t *Tracer) Dropped() uint64 {
	var dropped uint64
	t.rings.Range(func(_, v any) bool {
		r := v.(*ring)
		if h := r.head.Load(); h > uint64(len(r.buf)) {
			dropped += h - uint64(len(r.buf))
		}
		return true
	})
	return dropped
}

func (t *Tracer) collect() ([]Record, uint64) {
	var recs []Record
	var dropped uint64
	t.rings.Range(func(_, v any) bool {
		r, d := v.(*ring).snapshot()
		recs = append(recs, r...)
		dropped += d
		return true
	})
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time < recs[j].Time })
	return recs, dropped
}

// Stats aggregates the retained events (see ComputeStats).
func (t *Tracer) Stats() *Stats {
	recs, dropped := t.collect()
	return ComputeStats(recs, dropped)
}
