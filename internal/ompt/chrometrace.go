package ompt

import (
	"encoding/json"
	"fmt"
	"io"
)

// traceEvent is one entry of the Chrome trace_event format
// (chrome://tracing, Perfetto). Timestamps and durations are in
// microseconds.
type traceEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat,omitempty"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur,omitempty"`
	Pid  int     `json:"pid"`
	Tid  int32   `json:"tid"`
	S    string  `json:"s,omitempty"`
	// ID ties flow-event pairs ("s"/"f") together; Bp: "e" binds the
	// flow arrival to the enclosing slice (Perfetto draws the arrow
	// into the slice instead of the next one).
	ID   string         `json:"id,omitempty"`
	Bp   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const tracePid = 1

func us(ns int64) float64 { return float64(ns) / 1e3 }

// WriteChromeTrace exports the tracer's events as Chrome trace_event
// JSON. Call after the traced regions have joined.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	recs, dropped := t.collect()
	return WriteChromeTrace(w, recs, dropped)
}

// WriteChromeTrace converts a record stream (sorted by time) to the
// Chrome trace_event JSON object format.
func WriteChromeTrace(w io.Writer, recs []Record, dropped uint64) error {
	events := []traceEvent{{
		Name: "process_name", Ph: "M", Pid: tracePid,
		Args: map[string]any{"name": "omp4go"},
	}}
	seenTid := map[int32]bool{}
	// Barrier and critical sections are paired per thread: the enter
	// (acquire) timestamp opens the span that the exit closes.
	barrierEnter := map[int32][]Record{}
	// Pre-pass for dependence flow arrows: the EvTaskEnd slice of each
	// task id, so an EvTaskDependResolved edge (A = released task,
	// B = completed predecessor) can be drawn from the predecessor's
	// slice end to the successor's slice start — the resolved event
	// precedes the successor's execution in the stream, so the slices
	// are only known after a full pass.
	taskEnd := map[int64]Record{}
	for _, r := range recs {
		if r.Kind == EvTaskEnd {
			taskEnd[r.A] = r
		}
	}

	for _, r := range recs {
		if !seenTid[r.GTID] {
			seenTid[r.GTID] = true
			events = append(events, traceEvent{
				Name: "thread_name", Ph: "M", Pid: tracePid, Tid: r.GTID,
				Args: map[string]any{"name": fmt.Sprintf("omp thread %d", r.GTID)},
			})
		}
		switch r.Kind {
		case EvParallelBegin:
			events = append(events, traceEvent{
				Name: fmt.Sprintf("parallel #%d", r.A), Cat: "parallel", Ph: "B",
				Ts: us(r.Time), Pid: tracePid, Tid: r.GTID,
				Args: map[string]any{"region": r.A, "team_size": r.B},
			})
		case EvParallelEnd:
			events = append(events, traceEvent{
				Name: fmt.Sprintf("parallel #%d", r.A), Cat: "parallel", Ph: "E",
				Ts: us(r.Time), Pid: tracePid, Tid: r.GTID,
			})
		case EvImplicitTaskBegin:
			events = append(events, traceEvent{
				Name: fmt.Sprintf("region #%d worker %d", r.A, r.B), Cat: "parallel", Ph: "B",
				Ts: us(r.Time), Pid: tracePid, Tid: r.GTID,
				Args: map[string]any{"region": r.A, "thread_num": r.B},
			})
		case EvImplicitTaskEnd:
			events = append(events, traceEvent{
				Name: fmt.Sprintf("region #%d worker %d", r.A, r.B), Cat: "parallel", Ph: "E",
				Ts: us(r.Time), Pid: tracePid, Tid: r.GTID,
			})
		case EvBarrierEnter:
			barrierEnter[r.GTID] = append(barrierEnter[r.GTID], r)
		case EvBarrierExit:
			ts := us(r.Time) // fallback when the enter was dropped
			dur := 0.0
			if st := barrierEnter[r.GTID]; len(st) > 0 {
				enter := st[len(st)-1]
				barrierEnter[r.GTID] = st[:len(st)-1]
				ts = us(enter.Time)
				dur = us(r.Time - enter.Time)
			}
			kind := "implicit"
			if r.A == BarrierExplicit {
				kind = "explicit"
			}
			events = append(events, traceEvent{
				Name: "barrier (" + kind + ")", Cat: "barrier", Ph: "X",
				Ts: ts, Dur: dur, Pid: tracePid, Tid: r.GTID,
				Args: map[string]any{"wait_us": us(r.Dur), "epoch": r.B},
			})
		case EvLoopBegin:
			events = append(events, traceEvent{
				Name: "for (" + r.Label + ")", Cat: "loop", Ph: "B",
				Ts: us(r.Time), Pid: tracePid, Tid: r.GTID,
				Args: map[string]any{"iterations": r.A, "chunk": r.B, "schedule": r.Label},
			})
		case EvLoopEnd:
			events = append(events, traceEvent{
				Name: "for", Cat: "loop", Ph: "E",
				Ts: us(r.Time), Pid: tracePid, Tid: r.GTID,
			})
		case EvLoopChunk:
			events = append(events, traceEvent{
				Name: fmt.Sprintf("chunk [%d,%d)", r.A, r.B), Cat: "chunk", Ph: "X",
				Ts: us(r.Time - r.Dur), Dur: us(r.Dur), Pid: tracePid, Tid: r.GTID,
				Args: map[string]any{"lb": r.A, "ub": r.B, "iterations": r.B - r.A},
			})
		case EvTaskCreate:
			events = append(events, traceEvent{
				Name: fmt.Sprintf("task #%d create", r.A), Cat: "task", Ph: "i",
				Ts: us(r.Time), Pid: tracePid, Tid: r.GTID, S: "t",
				Args: map[string]any{"task": r.A, "queue_depth": r.B},
			})
		case EvTaskEnd:
			events = append(events, traceEvent{
				Name: fmt.Sprintf("task #%d", r.A), Cat: "task", Ph: "X",
				Ts: us(r.Time - r.Dur), Dur: us(r.Dur), Pid: tracePid, Tid: r.GTID,
				Args: map[string]any{"task": r.A},
			})
		case EvTaskSteal:
			events = append(events, traceEvent{
				Name: fmt.Sprintf("task #%d steal", r.A), Cat: "task", Ph: "i",
				Ts: us(r.Time), Pid: tracePid, Tid: r.GTID, S: "t",
				Args: map[string]any{"task": r.A, "victim": r.B},
			})
		case EvTaskOverflow:
			events = append(events, traceEvent{
				Name: fmt.Sprintf("task #%d overflow", r.A), Cat: "task", Ph: "i",
				Ts: us(r.Time), Pid: tracePid, Tid: r.GTID, S: "t",
				Args: map[string]any{"task": r.A, "queue_depth": r.B},
			})
		case EvCriticalAcquire:
			if r.Dur > 0 {
				events = append(events, traceEvent{
					Name: "critical wait (" + r.Label + ")", Cat: "critical", Ph: "X",
					Ts: us(r.Time - r.Dur), Dur: us(r.Dur), Pid: tracePid, Tid: r.GTID,
					Args: map[string]any{"name": r.Label},
				})
			}
		case EvCriticalRelease:
			events = append(events, traceEvent{
				Name: "critical (" + r.Label + ")", Cat: "critical", Ph: "X",
				Ts: us(r.Time - r.Dur), Dur: us(r.Dur), Pid: tracePid, Tid: r.GTID,
				Args: map[string]any{"name": r.Label},
			})
		case EvReduceMerge:
			events = append(events, traceEvent{
				Name: "reduce merge (" + r.Label + ")", Cat: "reduction", Ph: "i",
				Ts: us(r.Time), Pid: tracePid, Tid: r.GTID, S: "t",
			})
		case EvTaskDependResolved:
			events = append(events, traceEvent{
				Name: fmt.Sprintf("task #%d depend resolved", r.A), Cat: "task", Ph: "i",
				Ts: us(r.Time), Pid: tracePid, Tid: r.GTID, S: "t",
				Args: map[string]any{"task": r.A, "by": r.B},
			})
			// Perfetto flow arrow from the predecessor's slice to the
			// released task's slice, when both ran to completion.
			pred, pok := taskEnd[r.B]
			succ, sok := taskEnd[r.A]
			if pok && sok {
				id := fmt.Sprintf("dep-%d-%d", r.B, r.A)
				events = append(events,
					traceEvent{
						Name: "depend", Cat: "flow", Ph: "s", ID: id,
						Ts: us(pred.Time), Pid: tracePid, Tid: pred.GTID,
					},
					traceEvent{
						Name: "depend", Cat: "flow", Ph: "f", Bp: "e", ID: id,
						Ts: us(succ.Time - succ.Dur), Pid: tracePid, Tid: succ.GTID,
					})
			}
		case EvTaskgroupBegin:
			events = append(events, traceEvent{
				Name: fmt.Sprintf("taskgroup #%d", r.A), Cat: "taskgroup", Ph: "B",
				Ts: us(r.Time), Pid: tracePid, Tid: r.GTID,
				Args: map[string]any{"taskgroup": r.A},
			})
		case EvKernelEnter:
			events = append(events, traceEvent{
				Name: "kernel (" + r.Label + ")", Cat: "kernel", Ph: "i",
				Ts: us(r.Time), Pid: tracePid, Tid: r.GTID, S: "t",
				Args: map[string]any{"iterations": r.A, "chunk": r.B, "schedule": r.Label},
			})
		case EvTaskgroupEnd:
			args := map[string]any{"taskgroup": r.A}
			if r.Label != "" {
				args["state"] = r.Label
			}
			events = append(events, traceEvent{
				Name: fmt.Sprintf("taskgroup #%d", r.A), Cat: "taskgroup", Ph: "E",
				Ts: us(r.Time), Pid: tracePid, Tid: r.GTID,
				Args: args,
			})
		}
	}

	out := struct {
		TraceEvents     []traceEvent   `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		OtherData       map[string]any `json:"otherData,omitempty"`
	}{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
	}
	if dropped > 0 {
		out.OtherData = map[string]any{"dropped_events": dropped}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}
