package ompt

import (
	"sync"
	"testing"
)

// recordingTool counts events; safe for concurrent Emit.
type recordingTool struct {
	mu   sync.Mutex
	recs []Record
}

func (r *recordingTool) Emit(rec Record) {
	r.mu.Lock()
	r.recs = append(r.recs, rec)
	r.mu.Unlock()
}

func TestMultiFansOut(t *testing.T) {
	a, b := &recordingTool{}, &recordingTool{}
	m := Multi(a, nil, b)
	for i := 0; i < 3; i++ {
		m.Emit(Record{Kind: EvParallelBegin, A: int64(i)})
	}
	if len(a.recs) != 3 || len(b.recs) != 3 {
		t.Fatalf("fan-out counts = %d, %d; want 3, 3", len(a.recs), len(b.recs))
	}
	if a.recs[2].A != 2 || b.recs[2].A != 2 {
		t.Fatalf("records not forwarded in order")
	}
}

func TestMultiDegenerateForms(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Errorf("empty Multi should be nil (detach)")
	}
	a := &recordingTool{}
	if got := Multi(a); got != Tool(a) {
		t.Errorf("single-tool Multi should return the tool unwrapped")
	}
	// Nested Multis flatten to one hop.
	b, c := &recordingTool{}, &recordingTool{}
	m := Multi(Multi(a, b), c).(*multiTool)
	if len(m.tools) != 3 {
		t.Errorf("nested Multi not flattened: %d tools", len(m.tools))
	}
}

func TestMultiWithTracers(t *testing.T) {
	t1, t2 := NewTracer(0), NewTracer(0)
	m := Multi(t1, t2)
	m.Emit(Record{Kind: EvParallelBegin, GTID: 1, A: 7})
	if len(t1.Records()) != 1 || len(t2.Records()) != 1 {
		t.Fatalf("tracers did not both record")
	}
}
