package ompt

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestChromeTraceDroppedEnterFallback overflows a small ring so that
// barrier exit records survive whose matching enter records were
// overwritten, and asserts the exporter still produces valid
// trace_event JSON: the orphan exits fall back to their own timestamp
// (zero-duration span) and the drop count is reported.
func TestChromeTraceDroppedEnterFallback(t *testing.T) {
	tr := NewTracer(4) // ring capacity 4 records
	// Push 4 enters, then 4 exits: the exits overwrite every enter, so
	// at export time all four exits are orphans.
	for i := int64(0); i < 4; i++ {
		tr.Emit(Record{Time: 100 + i, Kind: EvBarrierEnter, GTID: 1, A: BarrierImplicit, B: i})
	}
	for i := int64(0); i < 4; i++ {
		tr.Emit(Record{Time: 200 + i, Kind: EvBarrierExit, GTID: 1, A: BarrierImplicit, B: i, Dur: 5})
	}
	if d := tr.Dropped(); d != 4 {
		t.Fatalf("dropped = %d, want 4", d)
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var out struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("exporter emitted invalid JSON: %v\n%s", err, buf.String())
	}
	if d, ok := out.OtherData["dropped_events"]; !ok || d.(float64) != 4 {
		t.Fatalf("otherData.dropped_events = %v, want 4", out.OtherData)
	}
	barriers := 0
	for _, ev := range out.TraceEvents {
		if !strings.HasPrefix(ev.Name, "barrier") {
			continue
		}
		barriers++
		// Orphan exits use the exit's own timestamp and no duration.
		if ev.Ts < 0.200 || ev.Dur != 0 {
			t.Errorf("orphan barrier event = %+v; want exit-time fallback with zero duration", ev)
		}
	}
	if barriers != 4 {
		t.Errorf("barrier events = %d, want 4", barriers)
	}
}

// TestChromeTracePairedEnterStillSpans pins the non-degenerate case
// alongside the fallback: with both records retained the exporter
// emits a real span from the enter timestamp.
func TestChromeTracePairedEnterStillSpans(t *testing.T) {
	tr := NewTracer(16)
	tr.Emit(Record{Time: 1000, Kind: EvBarrierEnter, GTID: 2, A: BarrierExplicit, B: 1})
	tr.Emit(Record{Time: 4000, Kind: EvBarrierExit, GTID: 2, A: BarrierExplicit, B: 1, Dur: 3000})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.OtherData != nil {
		t.Errorf("unexpected drop report: %v", out.OtherData)
	}
	found := false
	for _, ev := range out.TraceEvents {
		if strings.HasPrefix(ev.Name, "barrier") {
			found = true
			if ev.Ts != 1.0 || ev.Dur != 3.0 {
				t.Errorf("paired barrier span = ts %v dur %v, want 1.0/3.0", ev.Ts, ev.Dur)
			}
		}
	}
	if !found {
		t.Errorf("no barrier span exported")
	}
}
