package ompt

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestChromeTraceDroppedEnterFallback overflows a small ring so that
// barrier exit records survive whose matching enter records were
// overwritten, and asserts the exporter still produces valid
// trace_event JSON: the orphan exits fall back to their own timestamp
// (zero-duration span) and the drop count is reported.
func TestChromeTraceDroppedEnterFallback(t *testing.T) {
	tr := NewTracer(4) // ring capacity 4 records
	// Push 4 enters, then 4 exits: the exits overwrite every enter, so
	// at export time all four exits are orphans.
	for i := int64(0); i < 4; i++ {
		tr.Emit(Record{Time: 100 + i, Kind: EvBarrierEnter, GTID: 1, A: BarrierImplicit, B: i})
	}
	for i := int64(0); i < 4; i++ {
		tr.Emit(Record{Time: 200 + i, Kind: EvBarrierExit, GTID: 1, A: BarrierImplicit, B: i, Dur: 5})
	}
	if d := tr.Dropped(); d != 4 {
		t.Fatalf("dropped = %d, want 4", d)
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var out struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("exporter emitted invalid JSON: %v\n%s", err, buf.String())
	}
	if d, ok := out.OtherData["dropped_events"]; !ok || d.(float64) != 4 {
		t.Fatalf("otherData.dropped_events = %v, want 4", out.OtherData)
	}
	barriers := 0
	for _, ev := range out.TraceEvents {
		if !strings.HasPrefix(ev.Name, "barrier") {
			continue
		}
		barriers++
		// Orphan exits use the exit's own timestamp and no duration.
		if ev.Ts < 0.200 || ev.Dur != 0 {
			t.Errorf("orphan barrier event = %+v; want exit-time fallback with zero duration", ev)
		}
	}
	if barriers != 4 {
		t.Errorf("barrier events = %d, want 4", barriers)
	}
}

// TestChromeTracePairedEnterStillSpans pins the non-degenerate case
// alongside the fallback: with both records retained the exporter
// emits a real span from the enter timestamp.
func TestChromeTracePairedEnterStillSpans(t *testing.T) {
	tr := NewTracer(16)
	tr.Emit(Record{Time: 1000, Kind: EvBarrierEnter, GTID: 2, A: BarrierExplicit, B: 1})
	tr.Emit(Record{Time: 4000, Kind: EvBarrierExit, GTID: 2, A: BarrierExplicit, B: 1, Dur: 3000})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.OtherData != nil {
		t.Errorf("unexpected drop report: %v", out.OtherData)
	}
	found := false
	for _, ev := range out.TraceEvents {
		if strings.HasPrefix(ev.Name, "barrier") {
			found = true
			if ev.Ts != 1.0 || ev.Dur != 3.0 {
				t.Errorf("paired barrier span = ts %v dur %v, want 1.0/3.0", ev.Ts, ev.Dur)
			}
		}
	}
	if !found {
		t.Errorf("no barrier span exported")
	}
}

// TestChromeTraceDependFlowArrows asserts an EvTaskDependResolved edge
// with both endpoint tasks completed exports a Perfetto flow pair: a
// flow start ("s") anchored at the end of the predecessor's slice and
// a flow finish ("f", bp "e") anchored at the start of the released
// task's slice, sharing one flow id.
func TestChromeTraceDependFlowArrows(t *testing.T) {
	tr := NewTracer(64)
	// Predecessor task 1 completes on gtid 0 at t=1000ns; its release
	// resolves task 2's last depend, and task 2 later runs on gtid 1
	// from t=2200ns to t=3000ns.
	tr.Emit(Record{Time: 1000, Dur: 500, Kind: EvTaskEnd, GTID: 0, A: 1})
	tr.Emit(Record{Time: 1000, Kind: EvTaskDependResolved, GTID: 0, A: 2, B: 1})
	tr.Emit(Record{Time: 3000, Dur: 800, Kind: EvTaskEnd, GTID: 1, A: 2})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var out struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			ID   string  `json:"id"`
			Bp   string  `json:"bp"`
			Ts   float64 `json:"ts"`
			Tid  int32   `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("exporter emitted invalid JSON: %v\n%s", err, buf.String())
	}
	var haveStart, haveFinish bool
	for _, ev := range out.TraceEvents {
		if ev.Cat != "flow" {
			continue
		}
		if ev.ID != "dep-1-2" {
			t.Errorf("flow event id = %q, want dep-1-2", ev.ID)
		}
		switch ev.Ph {
		case "s":
			haveStart = true
			// Anchored at the predecessor slice's end on its thread.
			if ev.Ts != 1.0 || ev.Tid != 0 {
				t.Errorf("flow start ts %v tid %d, want 1.0 on tid 0", ev.Ts, ev.Tid)
			}
			if ev.Bp != "" {
				t.Errorf("flow start carries bp %q, want none", ev.Bp)
			}
		case "f":
			haveFinish = true
			// Anchored at the released slice's start on its thread;
			// bp "e" binds to the enclosing slice.
			if ev.Ts != 2.2 || ev.Tid != 1 {
				t.Errorf("flow finish ts %v tid %d, want 2.2 on tid 1", ev.Ts, ev.Tid)
			}
			if ev.Bp != "e" {
				t.Errorf("flow finish bp = %q, want e", ev.Bp)
			}
		default:
			t.Errorf("unexpected flow phase %q", ev.Ph)
		}
	}
	if !haveStart || !haveFinish {
		t.Fatalf("flow pair incomplete: start=%v finish=%v\n%s", haveStart, haveFinish, buf.String())
	}
}

// TestChromeTraceDependFlowNeedsBothEnds pins the guard: a resolved
// edge whose released task never ran to completion (or whose
// predecessor's end record was lost) exports the instant marker but no
// dangling flow arrows.
func TestChromeTraceDependFlowNeedsBothEnds(t *testing.T) {
	tr := NewTracer(64)
	tr.Emit(Record{Time: 1000, Dur: 500, Kind: EvTaskEnd, GTID: 0, A: 1})
	tr.Emit(Record{Time: 1000, Kind: EvTaskDependResolved, GTID: 0, A: 2, B: 1})
	// No EvTaskEnd for task 2.
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if strings.Contains(buf.String(), `"cat":"flow"`) {
		t.Errorf("flow arrow emitted without the released task's slice:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "depend resolved") {
		t.Errorf("instant marker for the resolved edge is missing:\n%s", buf.String())
	}
}
