package ompt

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRingPushSnapshot(t *testing.T) {
	r := newRing(8)
	for i := 0; i < 5; i++ {
		r.push(Record{Time: int64(i), Kind: EvLoopChunk})
	}
	recs, dropped := r.snapshot()
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	if len(recs) != 5 {
		t.Fatalf("len(recs) = %d, want 5", len(recs))
	}
	for i, rec := range recs {
		if rec.Time != int64(i) {
			t.Fatalf("recs[%d].Time = %d, want %d", i, rec.Time, i)
		}
	}
}

func TestRingOverflowDropsOldest(t *testing.T) {
	r := newRing(8)
	for i := 0; i < 20; i++ {
		r.push(Record{Time: int64(i)})
	}
	recs, dropped := r.snapshot()
	if dropped != 12 {
		t.Fatalf("dropped = %d, want 12", dropped)
	}
	if len(recs) != 8 {
		t.Fatalf("len(recs) = %d, want 8", len(recs))
	}
	// The retained window is the newest 8 records, in push order.
	for i, rec := range recs {
		if want := int64(12 + i); rec.Time != want {
			t.Fatalf("recs[%d].Time = %d, want %d", i, rec.Time, want)
		}
	}
}

func TestRingRoundsToPowerOfTwo(t *testing.T) {
	r := newRing(10)
	if len(r.buf) != 16 {
		t.Fatalf("capacity = %d, want 16", len(r.buf))
	}
	if d := newRing(0); len(d.buf) != DefaultRingSize {
		t.Fatalf("default capacity = %d, want %d", len(d.buf), DefaultRingSize)
	}
}

// TestTracerConcurrentEmit exercises the one-ring-per-GTID path from
// many goroutines at once (run under -race).
func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(64)
	const threads, events = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(gtid int32) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				tr.Emit(Record{Time: int64(gtid)*1000 + int64(i), GTID: gtid, Kind: EvLoopChunk})
			}
		}(int32(g))
	}
	wg.Wait()
	recs := tr.Records()
	if len(recs) != threads*events {
		t.Fatalf("len(recs) = %d, want %d", len(recs), threads*events)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Time < recs[i-1].Time {
			t.Fatalf("records not sorted by time at %d", i)
		}
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", tr.Dropped())
	}
}

func TestComputeStats(t *testing.T) {
	recs := []Record{
		{Time: 0, Kind: EvParallelBegin, GTID: 0, A: 1, B: 2},
		{Time: 10, Kind: EvLoopChunk, GTID: 1, A: 0, B: 50, Dur: 100},
		{Time: 20, Kind: EvLoopChunk, GTID: 2, A: 50, B: 100, Dur: 300},
		{Time: 30, Kind: EvBarrierExit, GTID: 1, Dur: 40},
		{Time: 30, Kind: EvBarrierExit, GTID: 2, Dur: 10},
		{Time: 40, Kind: EvTaskCreate, GTID: 1, A: 1, B: 3},
		{Time: 50, Kind: EvTaskEnd, GTID: 2, A: 1, Dur: 25},
		{Time: 60, Kind: EvCriticalAcquire, GTID: 1, Dur: 7},
		{Time: 100, Kind: EvParallelEnd, GTID: 0, A: 1, B: 2, Dur: 100},
	}
	s := ComputeStats(recs, 3)
	if s.Regions != 1 {
		t.Fatalf("Regions = %d, want 1", s.Regions)
	}
	if s.TasksCreated != 1 || s.MaxQueueDepth != 3 {
		t.Fatalf("tasks = %d depth = %d, want 1 and 3", s.TasksCreated, s.MaxQueueDepth)
	}
	if s.TotalBarrierWaitNS != 50 {
		t.Fatalf("TotalBarrierWaitNS = %d, want 50", s.TotalBarrierWaitNS)
	}
	if s.TotalCriticalWaitNS != 7 {
		t.Fatalf("TotalCriticalWaitNS = %d, want 7", s.TotalCriticalWaitNS)
	}
	if s.Dropped != 3 {
		t.Fatalf("Dropped = %d, want 3", s.Dropped)
	}
	if s.SpanNS != 100 {
		t.Fatalf("SpanNS = %d, want 100", s.SpanNS)
	}
	// Thread 1 work = 100 (chunk); thread 2 work = 300 + 25 (chunk +
	// task). Imbalance = max/mean = 325 / 212.5.
	want := 325.0 / 212.5
	if s.LoadImbalance < want-1e-9 || s.LoadImbalance > want+1e-9 {
		t.Fatalf("LoadImbalance = %v, want %v", s.LoadImbalance, want)
	}
	var t1 *ThreadStats
	for i := range s.Threads {
		if s.Threads[i].GTID == 1 {
			t1 = &s.Threads[i]
		}
	}
	if t1 == nil || t1.Chunks != 1 || t1.Iterations != 50 || t1.BarrierWaitNS != 40 {
		t.Fatalf("thread 1 stats = %+v", t1)
	}
}

func TestWriteChromeTraceValidJSON(t *testing.T) {
	tr := NewTracer(0)
	tr.Emit(Record{Time: 0, Kind: EvParallelBegin, GTID: 0, A: 1, B: 2})
	tr.Emit(Record{Time: 5, Kind: EvImplicitTaskBegin, GTID: 1, A: 1, B: 0})
	tr.Emit(Record{Time: 10, Kind: EvLoopBegin, GTID: 1, A: 100, Label: "static"})
	tr.Emit(Record{Time: 40, Kind: EvLoopChunk, GTID: 1, A: 0, B: 100, Dur: 30})
	tr.Emit(Record{Time: 41, Kind: EvLoopEnd, GTID: 1, A: 100})
	tr.Emit(Record{Time: 42, Kind: EvBarrierEnter, GTID: 1, B: 1})
	tr.Emit(Record{Time: 50, Kind: EvBarrierExit, GTID: 1, B: 1, Dur: 8})
	tr.Emit(Record{Time: 55, Kind: EvImplicitTaskEnd, GTID: 1, A: 1, B: 0})
	tr.Emit(Record{Time: 60, Kind: EvParallelEnd, GTID: 0, A: 1, B: 2, Dur: 60})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Unit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.Unit)
	}
	var phases []string
	for _, e := range doc.TraceEvents {
		ph, _ := e["ph"].(string)
		phases = append(phases, ph)
	}
	joined := strings.Join(phases, "")
	for _, want := range []string{"B", "E", "X", "M"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("trace has no %q events: %v", want, phases)
		}
	}
	// The barrier enter/exit pair must collapse into one X span with a
	// wait_us arg.
	found := false
	for _, e := range doc.TraceEvents {
		if name, _ := e["name"].(string); strings.HasPrefix(name, "barrier") {
			args, _ := e["args"].(map[string]any)
			if _, ok := args["wait_us"]; ok {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no barrier X event with wait_us arg:\n%s", buf.String())
	}
}

func TestWriteSummary(t *testing.T) {
	tr := NewTracer(0)
	tr.Emit(Record{Time: 0, Kind: EvParallelBegin, GTID: 0, A: 1, B: 2})
	tr.Emit(Record{Time: 10, Kind: EvLoopChunk, GTID: 1, A: 0, B: 10, Dur: 5})
	tr.Emit(Record{Time: 90, Kind: EvParallelEnd, GTID: 0, A: 1, B: 2, Dur: 90})
	var buf bytes.Buffer
	if err := tr.WriteSummary(&buf); err != nil {
		t.Fatalf("WriteSummary: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"trace summary", "parallel regions 1", "thread"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
