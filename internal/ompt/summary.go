package ompt

import (
	"fmt"
	"io"
	"time"
)

// WriteSummary exports the tracer's events as the plain-text
// aggregate report. Call after the traced regions have joined.
func (t *Tracer) WriteSummary(w io.Writer) error {
	return t.Stats().Write(w)
}

func ns(v int64) string {
	return time.Duration(v).Round(time.Microsecond).String()
}

// Write renders the aggregate statistics as an aligned text table:
// the plain-text exporter of the tracing subsystem.
func (s *Stats) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== omp4go trace summary ==\n"); err != nil {
		return err
	}
	fmt.Fprintf(w, "records %d (%d dropped), span %s\n", s.Records, s.Dropped, ns(s.SpanNS))
	fmt.Fprintf(w, "parallel regions %d, tasks created %d, max task-queue depth %d\n",
		s.Regions, s.TasksCreated, s.MaxQueueDepth)
	if s.TasksStolen > 0 || s.TaskOverflows > 0 {
		fmt.Fprintf(w, "tasks stolen %d, deque overflows %d\n",
			s.TasksStolen, s.TaskOverflows)
	}
	if s.TaskDependsResolved > 0 || s.Taskgroups > 0 {
		fmt.Fprintf(w, "task dependences resolved %d, taskgroups %d\n",
			s.TaskDependsResolved, s.Taskgroups)
	}
	if s.KernelLoops > 0 {
		fmt.Fprintf(w, "compiled kernel loops %d (member shares on the static fast path)\n",
			s.KernelLoops)
	}
	fmt.Fprintf(w, "total barrier wait %s, total critical wait %s\n",
		ns(s.TotalBarrierWaitNS), ns(s.TotalCriticalWaitNS))
	if s.LoadImbalance > 0 {
		fmt.Fprintf(w, "load-imbalance factor %.3f (max/mean thread work time)\n", s.LoadImbalance)
	}
	if len(s.Threads) == 0 {
		return nil
	}
	fmt.Fprintf(w, "%-7s %7s %7s %10s %12s %12s %12s %6s %6s\n",
		"thread", "events", "chunks", "iters", "work", "barrier", "crit-wait", "tasks", "stolen")
	for _, t := range s.Threads {
		if _, err := fmt.Fprintf(w, "%-7d %7d %7d %10d %12s %12s %12s %6d %6d\n",
			t.GTID, t.Events, t.Chunks, t.Iterations,
			ns(t.WorkNS), ns(t.BarrierWaitNS), ns(t.CriticalWaitNS), t.TasksRun, t.TasksStolen); err != nil {
			return err
		}
	}
	return nil
}
